#include "sim/engine.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>

namespace cms::sim {

TimingEngine::TimingEngine(Platform& platform, Os& os, std::vector<Task*> tasks,
                           std::function<bool()> finished)
    : platform_(platform), os_(os), tasks_(std::move(tasks)),
      finished_(std::move(finished)) {
  procs_.resize(platform_.num_procs());
  for (std::size_t p = 0; p < procs_.size(); ++p)
    procs_[p].stats.id = static_cast<ProcId>(p);
  task_states_.resize(tasks_.size());
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    task_states_[i].stats.id = tasks_[i]->id();
    task_states_[i].stats.name = tasks_[i]->name();
  }
}

void TimingEngine::dispatch(ProcState& ps, std::size_t p, int idx) {
  Task* task = tasks_[static_cast<std::size_t>(idx)];
  const PlatformConfig& cfg = platform_.config();

  if (ps.current != idx) {
    if (ps.current != -1)
      platform_.hierarchy().on_task_switch(static_cast<ProcId>(p));
    ps.clock += cfg.task_switch_cost;
    ps.stats.switch_cycles += cfg.task_switch_cost;
    ++ps.stats.switches;
    // Scheduler work touches the runtime's static data/bss segments. The
    // scheduler reads the same run-queue structures on every switch (a
    // small per-processor window), which is why the paper's "rt data" /
    // "rt bss" clients are satisfied by a few exclusive sets.
    const Cycle before = ps.clock;
    for (const Region* r : {&cfg.rt_data, &cfg.rt_bss}) {
      if (r->size == 0 || cfg.switch_touch_bytes == 0) continue;
      const std::uint64_t stride = platform_.config().hier.l1.line_bytes;
      const std::uint64_t offset = (p * cfg.switch_touch_bytes) % r->size;
      for (std::uint64_t b = 0; b < cfg.switch_touch_bytes; b += stride) {
        const Addr a = r->base + (offset + b) % r->size;
        const auto type = (r == &cfg.rt_bss) ? AccessType::kWrite : AccessType::kRead;
        const auto out = platform_.hierarchy().access(
            static_cast<ProcId>(p), task->id(), a, 4, type, ps.clock);
        ps.clock = out.finish;
      }
    }
    ps.stats.switch_cycles += ps.clock - before;
    ps.current = idx;
    ps.quantum_left = cfg.quantum_firings;
  }
  if (ps.quantum_left > 0) --ps.quantum_left;

  TaskContext ctx(&task->recorder(), &task->regions());
  task->fire(ctx);
  auto trace = task->recorder().take();

  TaskState& tst = task_states_[static_cast<std::size_t>(idx)];
  ++tst.stats.firings;
  const std::uint64_t instr = trace.compute_cycles + trace.accesses;
  tst.stats.instructions += instr;
  ps.stats.instructions += instr;
  ++dispatches_;

  tst.dispatched = !trace.events.empty();
  for (auto& e : trace.events) ps.pending.push_back(e);
}

void TimingEngine::step_access(ProcState& ps, std::size_t p) {
  const MemAccess a = ps.pending.front();
  ps.pending.pop_front();
  assert(ps.current >= 0);
  TaskState& tst = task_states_[static_cast<std::size_t>(ps.current)];

  ps.clock += a.gap;
  tst.stats.compute_cycles += a.gap;
  tst.stats.active_cycles += a.gap;
  ps.stats.busy_cycles += a.gap;

  if (a.size > 0) {
    const auto out = platform_.hierarchy().access(
        static_cast<ProcId>(p), tasks_[static_cast<std::size_t>(ps.current)]->id(),
        a.addr, a.size, a.type, ps.clock);
    const Cycle latency = out.finish - ps.clock;
    tst.stats.mem_cycles += latency;
    tst.stats.active_cycles += latency;
    tst.stats.l2_demand_misses += out.l2_misses;
    ps.stats.busy_cycles += latency;
    ps.clock = out.finish;
  }
  if (ps.pending.empty()) tst.dispatched = false;
}

void TimingEngine::set_phase_schedule(
    const std::vector<std::vector<TaskId>>& phases) {
  std::vector<std::size_t> phase_of(tasks_.size(),
                                    std::numeric_limits<std::size_t>::max());
  for (std::size_t k = 0; k < phases.size(); ++k) {
    for (const TaskId id : phases[k]) {
      std::size_t idx = tasks_.size();
      for (std::size_t i = 0; i < tasks_.size(); ++i)
        if (tasks_[i]->id() == id) {
          idx = i;
          break;
        }
      if (idx == tasks_.size())
        throw std::invalid_argument("phase schedule names task " +
                                    std::to_string(id) +
                                    ", which this engine does not run");
      if (phase_of[idx] != std::numeric_limits<std::size_t>::max())
        throw std::invalid_argument("phase schedule lists task " +
                                    std::to_string(id) + " twice (phases " +
                                    std::to_string(phase_of[idx]) + " and " +
                                    std::to_string(k) + ")");
      phase_of[idx] = k;
    }
  }
  for (std::size_t i = 0; i < phase_of.size(); ++i)
    if (phase_of[i] == std::numeric_limits<std::size_t>::max())
      throw std::invalid_argument("phase schedule misses task " +
                                  std::to_string(tasks_[i]->id()) + " (" +
                                  tasks_[i]->name() + ")");
  phase_of_ = std::move(phase_of);
  num_phases_ = phases.size();
  active_phase_ = 0;
  phase_entry_ = {0};
}

void TimingEngine::advance_phases(Cycle now) {
  // Earlier phases are drained by induction: a phase only activates once
  // its predecessor's tasks are all done, and done tasks stay done.
  while (active_phase_ + 1 < num_phases_) {
    bool drained = true;
    for (std::size_t i = 0; i < tasks_.size(); ++i)
      if (phase_of_[i] == active_phase_ && !tasks_[i]->done()) {
        drained = false;
        break;
      }
    if (!drained) break;
    ++active_phase_;
    phase_entry_.push_back(now);
    if (phase_hook_) phase_hook_(active_phase_, now, platform_.hierarchy());
  }
}

bool TimingEngine::all_done() const {
  return std::all_of(tasks_.begin(), tasks_.end(),
                     [](const Task* t) { return t->done(); });
}

SimResults TimingEngine::run() {
  platform_.hierarchy().reset_stats();
  bool deadlocked = false;
  bool hit_limit = false;

  std::vector<bool> busy(tasks_.size(), false);
  std::vector<std::size_t> order(procs_.size());

  for (;;) {
    if (dispatches_ >= platform_.config().max_dispatches) {
      hit_limit = true;
      break;
    }
    // Visit processors in clock order; the earliest one that can act
    // (replay a pending access, or dispatch a new firing) does so. This
    // keeps shared-L2 interleaving close to global time order while never
    // stalling on a processor that simply has nothing to run.
    for (std::size_t p = 0; p < order.size(); ++p) order[p] = p;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return procs_[a].clock < procs_[b].clock;
    });

    const bool app_finished = finished_ && finished_();
    for (std::size_t i = 0; i < tasks_.size(); ++i)
      busy[i] = task_states_[i].dispatched;

    if (num_phases_ > 1) {
      // Phase bookkeeping runs BEFORE the dispatch scan of the same
      // iteration: the moment a phase drains, its successor's tasks are
      // already eligible below — a fully gated network can never be
      // mistaken for a deadlock. Gating rides the busy[] mask, which
      // Os::pick and the quantum-keep fast path both honor.
      advance_phases(procs_[order[0]].clock);
      for (std::size_t i = 0; i < tasks_.size(); ++i)
        if (phase_of_[i] > active_phase_) busy[i] = true;
    }

    if (epoch_hook_ && epoch_length_ > 0) {
      const Cycle now = procs_[order[0]].clock;
      if (now >= next_epoch_) {
        epoch_hook_(now, platform_.hierarchy());
        next_epoch_ = (now / epoch_length_ + 1) * epoch_length_;
      }
    }

    bool acted = false;
    for (const std::size_t p : order) {
      ProcState& ps = procs_[p];
      if (!ps.pending.empty()) {
        step_access(ps, p);
        acted = true;
        break;
      }
      if (app_finished) continue;
      // Within its quantum a task keeps its processor if it can fire again.
      int idx = -1;
      if (ps.current != -1 && ps.quantum_left > 0 &&
          !busy[static_cast<std::size_t>(ps.current)] &&
          !tasks_[static_cast<std::size_t>(ps.current)]->done() &&
          tasks_[static_cast<std::size_t>(ps.current)]->can_fire()) {
        idx = ps.current;
      } else {
        idx = os_.pick(static_cast<ProcId>(p), tasks_, busy);
      }
      if (idx >= 0) {
        // A processor that fell behind while idle joins the present: work
        // becoming available cannot start in its past.
        ps.clock = std::max(ps.clock, procs_[order[0]].clock);
        dispatch(ps, p, idx);
        acted = true;
        break;
      }
    }
    if (acted) continue;

    // No processor can replay or dispatch anything.
    deadlocked = !app_finished && !all_done();
    break;
  }

  // Idle time = the span the processor's clock lags the makespan plus any
  // wait gaps already absorbed into its clock.
  Cycle makespan = 0;
  for (const auto& ps : procs_) makespan = std::max(makespan, ps.clock);
  for (auto& ps : procs_) {
    const Cycle accounted = ps.stats.busy_cycles + ps.stats.switch_cycles;
    ps.stats.idle_cycles = makespan > accounted ? makespan - accounted : 0;
  }

  return collect(deadlocked, hit_limit);
}

SimResults TimingEngine::collect(bool deadlocked, bool hit_limit) {
  SimResults res;
  res.deadlocked = deadlocked;
  res.hit_dispatch_limit = hit_limit;
  res.dispatches = dispatches_;

  const mem::PartitionedCache& l2 = platform_.hierarchy().l2();
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    TaskRunStats t = task_states_[i].stats;
    t.l2 = l2.client_stats(mem::ClientId::task(tasks_[i]->id()));
    res.tasks.push_back(std::move(t));
  }
  for (const auto& [client, stats] : l2.all_client_stats()) {
    if (!client.is_buffer()) continue;
    BufferRunStats b;
    b.id = client.id;
    const auto it = buffer_names_.find(client.id);
    b.name = it != buffer_names_.end() ? it->second
                                       : ("buffer" + std::to_string(client.id));
    b.l2 = stats;
    res.buffers.push_back(std::move(b));
  }
  for (std::size_t p = 0; p < procs_.size(); ++p) {
    ProcRunStats st = procs_[p].stats;
    st.cycles = procs_[p].clock;
    res.procs.push_back(st);
    res.makespan = std::max(res.makespan, procs_[p].clock);
    res.total_instructions += st.instructions;
  }
  res.l2_accesses = l2.stats().accesses;
  res.l2_misses = l2.stats().misses;
  res.traffic = platform_.hierarchy().traffic();
  return res;
}

}  // namespace cms::sim
