#include "sim/recorder.hpp"

namespace cms::sim {

void MemoryRecorder::emit(Addr addr, std::uint32_t size, AccessType type) {
  MemAccess a;
  a.addr = addr;
  a.size = size;
  a.type = type;
  a.gap = pending_gap_;
  compute_total_ += pending_gap_;
  pending_gap_ = 0;
  events_.push_back(a);
}

void MemoryRecorder::touch_code(const Region& code, std::uint64_t bytes,
                                std::uint32_t line_bytes) {
  if (code.size == 0 || bytes == 0) return;
  // Instruction fetch shows loop locality: the task's inner loops live in
  // a hot window at the start of its code region, so successive firings
  // re-fetch the same lines (cacheable with a small partition) rather
  // than streaming through the whole code segment.
  const std::uint64_t hot_window = std::min<std::uint64_t>(code.size, 2048);
  for (std::uint64_t off = 0; off < bytes; off += line_bytes) {
    const Addr a = code.base + (code_cursor_ % hot_window);
    compute(line_bytes / 8);  // a VLIW-ish bundle of work per fetched line
    read(a, line_bytes);
    code_cursor_ += line_bytes;
  }
}

MemoryRecorder::FiringTrace MemoryRecorder::take() {
  // Preserve any trailing compute as a final zero-byte "gap carrier" so
  // the engine charges it: encode as a size-0 read of the last address.
  const std::uint64_t real_accesses = events_.size();
  if (pending_gap_ != 0 && !events_.empty()) {
    MemAccess tail;
    tail.addr = events_.back().addr;
    tail.size = 0;
    tail.type = AccessType::kRead;
    tail.gap = pending_gap_;
    compute_total_ += pending_gap_;
    events_.push_back(tail);
  }
  pending_gap_ = 0;
  FiringTrace trace;
  trace.events.swap(events_);
  trace.compute_cycles = compute_total_;
  trace.accesses = real_accesses;
  compute_total_ = 0;
  return trace;
}

}  // namespace cms::sim
