#include "sim/platform.hpp"

namespace cms::sim {

PlatformConfig cake_platform() {
  PlatformConfig cfg;
  cfg.hier.num_procs = 4;
  cfg.hier.l1 = mem::cake_l1_config();
  cfg.hier.l2 = mem::cake_l2_config();
  return cfg;
}

}  // namespace cms::sim
