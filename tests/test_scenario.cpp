// Scenario registry tests: built-in lookup, registration, bad-spec and
// unknown-name errors.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "core/scenario.hpp"

namespace cms::core {
namespace {

TEST(ScenarioRegistry, BuiltinsRegistered) {
  for (const char* name :
       {"jpeg-canny", "mpeg2", "jpeg-canny-tiny", "mpeg2-tiny",
        "jpeg-canny-fine", "jpeg-canny-dense", "mpeg2-tiny-rand"})
    EXPECT_TRUE(scenarios().has(name)) << name;

  const auto names = scenarios().names();
  EXPECT_GE(names.size(), 7u);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(ScenarioRegistry, BuiltinsCarryTraceKeys) {
  // Every built-in must be store-ready: a non-empty trace_key that embeds
  // the scenario's own identity.
  for (const auto& name : scenarios().names()) {
    const ScenarioSpec spec = scenarios().get(name);
    EXPECT_FALSE(spec.experiment.trace_key.empty()) << name;
  }
  // Content-equal scenarios still get distinct keys (per-scenario
  // bookkeeping), and content differences change the digest half.
  EXPECT_NE(scenarios().get("jpeg-canny").experiment.trace_key,
            scenarios().get("jpeg-canny-fine").experiment.trace_key);
}

TEST(ScenarioRegistry, DenseGridHas64Points) {
  const ScenarioSpec dense = scenarios().get("jpeg-canny-dense");
  EXPECT_GE(dense.experiment.profile_grid.size(), 64u);
  // Dense sweeps default to trace replay — that is what makes them
  // affordable.
  EXPECT_EQ(dense.experiment.profiler, ProfilerMode::kTraceReplay);
  EXPECT_GT(dense.experiment.planner.curvature_eps, 0.0);
}

TEST(ScenarioRegistry, RandScenarioUsesRandomReplacement) {
  const ScenarioSpec rand = scenarios().get("mpeg2-tiny-rand");
  EXPECT_EQ(rand.experiment.platform.hier.l2.replacement,
            mem::Replacement::kRandom);
}

TEST(ScenarioRegistry, GetReturnsUsableSpec) {
  const ScenarioSpec spec = scenarios().get("mpeg2-tiny");
  EXPECT_EQ(spec.name, "mpeg2-tiny");
  EXPECT_FALSE(spec.description.empty());
  ASSERT_TRUE(spec.factory);
  const apps::Application app = spec.factory();
  EXPECT_EQ(app.net->processes().size(), 13u);  // MPEG2 task count
}

TEST(ScenarioRegistry, MakeExperimentWiresJobs) {
  const Experiment exp = scenarios().make_experiment("mpeg2-tiny", 2);
  EXPECT_EQ(exp.config().jobs, 2u);
  EXPECT_EQ(exp.tasks().size(), 13u);
}

TEST(ScenarioRegistry, MakeExperimentKeepsSpecJobsWhenOmitted) {
  ScenarioRegistry reg;
  ScenarioSpec spec;
  spec.name = "parallel-by-default";
  spec.factory = [] { return apps::make_m2v_app(apps::AppConfig::tiny()); };
  spec.experiment.jobs = 4;
  reg.add(spec);
  EXPECT_EQ(reg.make_experiment("parallel-by-default").config().jobs, 4u);
  EXPECT_EQ(reg.make_experiment("parallel-by-default", 2).config().jobs, 2u);
}

TEST(ScenarioRegistry, FineGridIsDenser) {
  const ScenarioSpec base = scenarios().get("jpeg-canny");
  const ScenarioSpec fine = scenarios().get("jpeg-canny-fine");
  EXPECT_GT(fine.experiment.profile_grid.size(),
            base.experiment.profile_grid.size());
}

TEST(ScenarioRegistry, UnknownNameThrows) {
  EXPECT_FALSE(scenarios().has("no-such-scenario"));
  EXPECT_THROW(scenarios().get("no-such-scenario"), std::out_of_range);
  EXPECT_THROW(scenarios().make_experiment("no-such-scenario"),
               std::out_of_range);
}

TEST(ScenarioRegistry, BadSpecsRejected) {
  ScenarioRegistry reg;
  ScenarioSpec nameless;
  nameless.factory = [] { return apps::Application{}; };
  EXPECT_THROW(reg.add(nameless), std::invalid_argument);

  ScenarioSpec factoryless;
  factoryless.name = "broken";
  EXPECT_THROW(reg.add(factoryless), std::invalid_argument);

  EXPECT_TRUE(reg.names().empty());  // nothing half-registered
}

TEST(ScenarioRegistry, DuplicateRegistrationRejected) {
  ScenarioRegistry reg;
  ScenarioSpec spec;
  spec.name = "dup";
  spec.factory = [] { return apps::Application{}; };
  reg.add(spec);
  EXPECT_THROW(reg.add(spec), std::invalid_argument);
  EXPECT_EQ(reg.names().size(), 1u);
}

}  // namespace
}  // namespace cms::core
