// Scenario registry tests: built-in lookup, registration, bad-spec and
// unknown-name errors.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "core/scenario.hpp"

namespace cms::core {
namespace {

TEST(ScenarioRegistry, BuiltinsRegistered) {
  for (const char* name :
       {"jpeg-canny", "mpeg2", "jpeg-canny-tiny", "mpeg2-tiny",
        "jpeg-canny-fine", "jpeg-canny-dense", "mpeg2-tiny-rand"})
    EXPECT_TRUE(scenarios().has(name)) << name;

  const auto names = scenarios().names();
  EXPECT_GE(names.size(), 7u);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(ScenarioRegistry, BuiltinsCarryTraceKeys) {
  // Every built-in must be store-ready: a non-empty trace_key that embeds
  // the scenario's own identity.
  for (const auto& name : scenarios().names()) {
    const ScenarioSpec spec = scenarios().get(name);
    EXPECT_FALSE(spec.experiment.trace_key.empty()) << name;
  }
  // Content-equal scenarios still get distinct keys (per-scenario
  // bookkeeping), and content differences change the digest half.
  EXPECT_NE(scenarios().get("jpeg-canny").experiment.trace_key,
            scenarios().get("jpeg-canny-fine").experiment.trace_key);
}

TEST(ScenarioRegistry, DenseGridHas64Points) {
  const ScenarioSpec dense = scenarios().get("jpeg-canny-dense");
  EXPECT_GE(dense.experiment.profile_grid.size(), 64u);
  // Dense sweeps default to trace replay — that is what makes them
  // affordable.
  EXPECT_EQ(dense.experiment.profiler, ProfilerMode::kTraceReplay);
  EXPECT_GT(dense.experiment.planner.curvature_eps, 0.0);
}

TEST(ScenarioRegistry, RandScenarioUsesRandomReplacement) {
  const ScenarioSpec rand = scenarios().get("mpeg2-tiny-rand");
  EXPECT_EQ(rand.experiment.platform.hier.l2.replacement,
            mem::Replacement::kRandom);
}

TEST(ScenarioRegistry, GetReturnsUsableSpec) {
  const ScenarioSpec spec = scenarios().get("mpeg2-tiny");
  EXPECT_EQ(spec.name, "mpeg2-tiny");
  EXPECT_FALSE(spec.description.empty());
  ASSERT_TRUE(spec.factory);
  const apps::Application app = spec.factory();
  EXPECT_EQ(app.net->processes().size(), 13u);  // MPEG2 task count
}

TEST(ScenarioRegistry, MakeExperimentWiresJobs) {
  const Experiment exp = scenarios().make_experiment("mpeg2-tiny", 2);
  EXPECT_EQ(exp.config().jobs, 2u);
  EXPECT_EQ(exp.tasks().size(), 13u);
}

TEST(ScenarioRegistry, MakeExperimentKeepsSpecJobsWhenOmitted) {
  ScenarioRegistry reg;
  ScenarioSpec spec;
  spec.name = "parallel-by-default";
  spec.factory = [] { return apps::make_m2v_app(apps::AppConfig::tiny()); };
  spec.experiment.jobs = 4;
  reg.add(spec);
  EXPECT_EQ(reg.make_experiment("parallel-by-default").config().jobs, 4u);
  EXPECT_EQ(reg.make_experiment("parallel-by-default", 2).config().jobs, 2u);
}

TEST(ScenarioRegistry, FineGridIsDenser) {
  const ScenarioSpec base = scenarios().get("jpeg-canny");
  const ScenarioSpec fine = scenarios().get("jpeg-canny-fine");
  EXPECT_GT(fine.experiment.profile_grid.size(),
            base.experiment.profile_grid.size());
}

TEST(ScenarioRegistry, ListReturnsDescriptionsAndPhaseCounts) {
  // One-lock listing for the plan_server `scenarios` command: every row
  // carries name, description and phase count, sorted, and matches what
  // per-name get() would say.
  const auto rows = scenarios().list();
  ASSERT_GE(rows.size(), 9u);
  EXPECT_EQ(rows.size(), scenarios().names().size());
  bool saw_stream = false;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (i > 0) {
      EXPECT_LT(rows[i - 1].name, rows[i].name);
    }
    EXPECT_FALSE(rows[i].description.empty()) << rows[i].name;
    EXPECT_EQ(rows[i].phase_count,
              scenarios().get(rows[i].name).phases.size());
    if (rows[i].phase_count > 0) saw_stream = true;
  }
  EXPECT_TRUE(saw_stream);
}

TEST(ScenarioRegistry, BuiltinTableMatchesRegistry) {
  // The registry is built FROM the declarative table — every row must be
  // registered, under its own name.
  for (const ScenarioDef& def : builtin_scenario_defs())
    EXPECT_TRUE(scenarios().has(def.name)) << def.name;
  EXPECT_GE(builtin_scenario_defs().size(), 9u);
}

TEST(ScenarioRegistry, StreamingBuiltinsCompilePhaseSchedules) {
  for (const char* name : {"stream-tiny", "stream-jpeg-mpeg2"}) {
    const ScenarioSpec spec = scenarios().get(name);
    ASSERT_EQ(spec.phases.size(), 3u) << name;
    // Windows tile the period axis from 0; every phase carries a usable
    // solo factory and a mix/content-keyed trace key.
    std::uint32_t expect_begin = 0;
    for (const ScenarioPhase& ph : spec.phases) {
      EXPECT_EQ(ph.begin, expect_begin) << name << "/" << ph.name;
      EXPECT_GT(ph.end, ph.begin) << name << "/" << ph.name;
      EXPECT_FALSE(ph.trace_key.empty());
      EXPECT_TRUE(static_cast<bool>(ph.factory));
      expect_begin = ph.end;
    }
  }

  // stream-tiny: jpeg burst -> mpeg2 -> jpeg drain. The two jpeg phases
  // share mix AND content, so their trace keys — and hence captures and
  // plan-cache entries — dedup; the mpeg2 phase is distinct.
  const ScenarioSpec tiny = scenarios().get("stream-tiny");
  EXPECT_EQ(tiny.phases[0].mix, apps::AppMix::kJpegCanny);
  EXPECT_EQ(tiny.phases[1].mix, apps::AppMix::kMpeg2);
  EXPECT_EQ(tiny.phases[0].trace_key, tiny.phases[2].trace_key);
  EXPECT_NE(tiny.phases[0].trace_key, tiny.phases[1].trace_key);
  // The phase key is mix/content-addressed, not scenario-addressed, so
  // the scenario's own key must differ from every phase's.
  EXPECT_NE(tiny.experiment.trace_key, tiny.phases[0].trace_key);

  // Phase window length drives the solo content's iteration counts.
  EXPECT_EQ(tiny.phases[1].content.m2v_frames,
            static_cast<int>(tiny.phases[1].end - tiny.phases[1].begin));

  // The combined factory builds the phased app: 15 + 13 + 15 tasks.
  const apps::Application app = tiny.factory();
  ASSERT_EQ(app.phases.size(), 3u);
  EXPECT_EQ(app.net->processes().size(), 43u);
}

TEST(ScenarioRegistry, PhaseScheduleValidationNamesThePhase) {
  const auto fails = [](ScenarioDef def, const char* what) -> std::string {
    try {
      compile_scenario(def);
      ADD_FAILURE() << "accepted: " << what;
    } catch (const std::invalid_argument& e) {
      return e.what();
    }
    return "";
  };
  ScenarioDef def;
  def.name = "bad-stream";
  def.content = apps::AppConfig::tiny();
  def.phases = {{"a", apps::AppMix::kJpegCanny, 0, 2},
                {"b", apps::AppMix::kMpeg2, 2, 4}};
  EXPECT_TRUE(compile_scenario(def).phases.size() == 2u);  // baseline OK

  ScenarioDef zero = def;
  zero.phases[1].end = 2;  // [2, 2)
  std::string msg = fails(zero, "zero-length phase");
  EXPECT_NE(msg.find("phase 1"), std::string::npos) << msg;
  EXPECT_NE(msg.find("zero-length"), std::string::npos) << msg;

  ScenarioDef overlap = def;
  overlap.phases[1].begin = 1;
  msg = fails(overlap, "overlapping windows");
  EXPECT_NE(msg.find("phase 1"), std::string::npos) << msg;
  EXPECT_NE(msg.find("overlapping"), std::string::npos) << msg;

  ScenarioDef gap = def;
  gap.phases[1].begin = 3;
  gap.phases[1].end = 5;
  msg = fails(gap, "gap between windows");
  EXPECT_NE(msg.find("phase 1"), std::string::npos) << msg;
  EXPECT_NE(msg.find("gap"), std::string::npos) << msg;

  ScenarioDef late = def;
  late.phases[0].begin = 1;  // phase 0 must begin at 0
  msg = fails(late, "phase 0 not at origin");
  EXPECT_NE(msg.find("phase 0"), std::string::npos) << msg;

  ScenarioDef nomix = def;
  nomix.phases[1].mix = apps::AppMix::kNone;
  msg = fails(nomix, "empty app mix");
  EXPECT_NE(msg.find("phase 1"), std::string::npos) << msg;
  EXPECT_NE(msg.find("empty app mix"), std::string::npos) << msg;

  // Fixed-mix rows still reject kNone (no phases to supply mixes).
  ScenarioDef fixed;
  fixed.name = "no-mix";
  EXPECT_THROW(compile_scenario(fixed), std::invalid_argument);
}

TEST(ScenarioRegistry, UnknownNameThrows) {
  EXPECT_FALSE(scenarios().has("no-such-scenario"));
  EXPECT_THROW(scenarios().get("no-such-scenario"), std::out_of_range);
  EXPECT_THROW(scenarios().make_experiment("no-such-scenario"),
               std::out_of_range);
}

TEST(ScenarioRegistry, BadSpecsRejected) {
  ScenarioRegistry reg;
  ScenarioSpec nameless;
  nameless.factory = [] { return apps::Application{}; };
  EXPECT_THROW(reg.add(nameless), std::invalid_argument);

  ScenarioSpec factoryless;
  factoryless.name = "broken";
  EXPECT_THROW(reg.add(factoryless), std::invalid_argument);

  EXPECT_TRUE(reg.names().empty());  // nothing half-registered
}

TEST(ScenarioRegistry, DuplicateRegistrationRejected) {
  ScenarioRegistry reg;
  ScenarioSpec spec;
  spec.name = "dup";
  spec.factory = [] { return apps::Application{}; };
  reg.add(spec);
  EXPECT_THROW(reg.add(spec), std::invalid_argument);
  EXPECT_EQ(reg.names().size(), 1u);
}

}  // namespace
}  // namespace cms::core
