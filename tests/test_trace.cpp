// Tests for the trace-capture-and-replay profiler (opt/trace.hpp):
// encode/decode round trips, the bit-identity of replay vs full
// simulation, and campaign determinism of replay jobs.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "core/experiment.hpp"
#include "core/scenario.hpp"
#include "opt/trace.hpp"

namespace cms::opt {
namespace {

TEST(ClientTrace, RoundTripsEvents) {
  ClientTrace t(mem::ClientId::task(3));
  const std::vector<TraceEvent> events = {
      {100, AccessType::kRead, false, 3},
      {101, AccessType::kWrite, false, 3},
      {90, AccessType::kRead, false, 3},      // negative delta
      {90, AccessType::kWrite, true, 5},      // writeback, issuer change
      {1u << 20, AccessType::kRead, false, 5},  // large forward jump
      {0, AccessType::kRead, false, 7},       // large backward jump
  };
  for (const auto& e : events) t.append(e.line_index, e.type, e.l1_writeback, e.task);
  EXPECT_EQ(t.events(), events.size());

  auto rd = t.reader();
  TraceEvent ev;
  for (const auto& want : events) {
    ASSERT_TRUE(rd.next(ev));
    EXPECT_EQ(ev.line_index, want.line_index);
    EXPECT_EQ(ev.type, want.type);
    EXPECT_EQ(ev.l1_writeback, want.l1_writeback);
    EXPECT_EQ(ev.task, want.task);
  }
  EXPECT_FALSE(rd.next(ev));

  // Sequential access encodes compactly: ~1 byte per event.
  ClientTrace seq(mem::ClientId::buffer(1));
  for (std::uint64_t i = 0; i < 1000; ++i)
    seq.append(500 + i, AccessType::kRead, false, 2);
  EXPECT_LE(seq.encoded_bytes(), 1005u);
}

TEST(ClientTrace, ReaderIsRestartable) {
  ClientTrace t(mem::ClientId::task(0));
  t.append(42, AccessType::kWrite, false, 0);
  for (int round = 0; round < 2; ++round) {
    auto rd = t.reader();
    TraceEvent ev;
    ASSERT_TRUE(rd.next(ev));
    EXPECT_EQ(ev.line_index, 42u);
    EXPECT_EQ(ev.type, AccessType::kWrite);
    EXPECT_FALSE(rd.next(ev));
  }
}

TEST(TraceRecorder, GroupsByClientAndSorts) {
  TraceRecorder rec(64);
  rec.on_l2_access({mem::ClientId::buffer(2), 0, 0x100 * 64, AccessType::kRead, false});
  rec.on_l2_access({mem::ClientId::task(1), 1, 0x200 * 64, AccessType::kWrite, false});
  rec.on_l2_access({mem::ClientId::buffer(2), 0, 0x101 * 64, AccessType::kRead, false});
  rec.on_l2_access({mem::ClientId::task(0), 0, 0x300 * 64, AccessType::kRead, true});

  const AccessTrace trace = rec.take();
  EXPECT_EQ(trace.streams.size(), 3u);
  EXPECT_EQ(trace.total_events(), 4u);
  // Sorted: tasks (kind 1) before buffers (kind 2), ids ascending.
  EXPECT_EQ(trace.streams[0].client(), mem::ClientId::task(0));
  EXPECT_EQ(trace.streams[1].client(), mem::ClientId::task(1));
  EXPECT_EQ(trace.streams[2].client(), mem::ClientId::buffer(2));

  const ClientTrace* buf = trace.find(mem::ClientId::buffer(2));
  ASSERT_NE(buf, nullptr);
  EXPECT_EQ(buf->events(), 2u);
  auto rd = buf->reader();
  TraceEvent ev;
  ASSERT_TRUE(rd.next(ev));
  EXPECT_EQ(ev.line_index, 0x100u);
  ASSERT_TRUE(rd.next(ev));
  EXPECT_EQ(ev.line_index, 0x101u);
  EXPECT_EQ(trace.find(mem::ClientId::buffer(9)), nullptr);

  // take() leaves the recorder empty for reuse.
  EXPECT_EQ(rec.take().streams.size(), 0u);
}

TEST(ReplayProfile, BitIdenticalToFullSimOnTinyScenarios) {
  for (const char* name : {"mpeg2-tiny", "jpeg-canny-tiny"}) {
    const auto exp = core::scenarios().make_experiment(name);
    const MissProfile full = exp.profile_with(core::ProfilerMode::kFullSim);
    const MissProfile replay =
        exp.profile_with(core::ProfilerMode::kTraceReplay);
    EXPECT_TRUE(full.identical(replay)) << name;
    // Every grid size of every task is covered.
    for (const auto& [id, task] : exp.tasks())
      EXPECT_EQ(replay.sizes(task).size(),
                exp.config().profile_grid.size())
          << name << "/" << task;
  }
}

TEST(ReplayProfile, BitIdenticalAcrossJitterRuns) {
  // profile_runs > 1: one capture per jitter seed feeds the replays.
  core::ExperimentConfig cfg;
  cfg.platform.hier.l2.size_bytes = 32 * 1024;
  cfg.profile_grid = {1, 4, 16};
  cfg.profile_runs = 3;
  const core::Experiment exp(
      [] { return apps::make_m2v_app(apps::AppConfig::tiny(11)); }, cfg);
  const MissProfile full = exp.profile_with(core::ProfilerMode::kFullSim);
  const MissProfile replay = exp.profile_with(core::ProfilerMode::kTraceReplay);
  EXPECT_TRUE(full.identical(replay));
  // Sanity: the statistics really pool several runs.
  const auto tasks = exp.tasks();
  ASSERT_FALSE(tasks.empty());
  EXPECT_EQ(full.curve(tasks.front().second).at(4).misses.count(), 3u);
}

TEST(ReplayProfile, CampaignDeterministicAcrossWorkerCounts) {
  const auto profile_at = [](unsigned workers) {
    return core::scenarios()
        .make_experiment("mpeg2-tiny", workers,
                         core::ProfilerMode::kTraceReplay)
        .profile();
  };
  const MissProfile serial = profile_at(1);
  for (const unsigned workers : {2u, 8u})
    EXPECT_TRUE(serial.identical(profile_at(workers)))
        << workers << " workers";
}

TEST(ReplayProfile, SerialDriverMatchesExperimentOrchestration) {
  const auto exp = core::scenarios().make_experiment("jpeg-canny-tiny");
  const std::vector<CaptureRun> captures = exp.capture_runs();
  ASSERT_EQ(captures.size(), 1u);  // tiny scenarios use one jitter run
  EXPECT_GT(captures.front().trace.total_events(), 0u);
  const MissProfile serial =
      replay_profile(exp.replay_jobs(captures),
                     exp.config().platform.hier.l2,
                     exp.config().platform.hier.l2_seed(),
                     miss_surcharge(exp.config().platform.hier));
  EXPECT_TRUE(serial.identical(
      exp.profile_with(core::ProfilerMode::kTraceReplay)));
}

TEST(ReplayProfile, RandomReplacementReplaysBitIdentically) {
  // kRandom is replayable because SetAssocCache draws counter-based
  // per-client randomness: the n-th victim of a client depends only on
  // (seed, client, n), so the captured stream pushed through a standalone
  // cache with the live L2's seed reproduces the exact victim sequence.
  // This pins replay == fullsim bit-identity — the regression guard for
  // the per-client RNG.
  core::ExperimentConfig cfg;
  cfg.platform.hier.l2.size_bytes = 32 * 1024;
  cfg.platform.hier.l2.replacement = mem::Replacement::kRandom;
  cfg.profile_grid = {1, 4, 16};
  cfg.profile_runs = 2;
  cfg.profiler = core::ProfilerMode::kTraceReplay;
  const core::Experiment exp(
      [] { return apps::make_m2v_app(apps::AppConfig::tiny(3)); }, cfg);
  const MissProfile replay = exp.profile();
  const MissProfile full = exp.profile_with(core::ProfilerMode::kFullSim);
  EXPECT_TRUE(full.identical(replay));
}

}  // namespace
}  // namespace cms::opt
