// Tests for the memory recorder, tracked containers and region allocator.
#include <gtest/gtest.h>

#include "sim/recorder.hpp"
#include "sim/regions.hpp"
#include "sim/tracked.hpp"

namespace cms::sim {
namespace {

TEST(Recorder, GapAttachesToNextAccess) {
  MemoryRecorder rec;
  rec.compute(10);
  rec.read(0x100, 4);
  rec.compute(5);
  rec.write(0x200, 8);
  const auto trace = rec.take();
  ASSERT_EQ(trace.events.size(), 2u);
  EXPECT_EQ(trace.events[0].gap, 10u);
  EXPECT_EQ(trace.events[0].addr, 0x100u);
  EXPECT_EQ(trace.events[0].type, AccessType::kRead);
  EXPECT_EQ(trace.events[1].gap, 5u);
  EXPECT_EQ(trace.events[1].type, AccessType::kWrite);
  EXPECT_EQ(trace.compute_cycles, 15u);
  EXPECT_EQ(trace.accesses, 2u);
}

TEST(Recorder, TrailingComputeCarried) {
  MemoryRecorder rec;
  rec.read(0x100, 4);
  rec.compute(42);
  const auto trace = rec.take();
  ASSERT_EQ(trace.events.size(), 2u);
  EXPECT_EQ(trace.events[1].size, 0u);  // gap carrier
  EXPECT_EQ(trace.events[1].gap, 42u);
  EXPECT_EQ(trace.compute_cycles, 42u);
  EXPECT_EQ(trace.accesses, 1u);  // carrier not counted as a real access
}

TEST(Recorder, TakeResetsState) {
  MemoryRecorder rec;
  rec.compute(3);
  rec.read(0x0, 4);
  (void)rec.take();
  EXPECT_TRUE(rec.empty());
  rec.read(0x40, 4);
  const auto trace = rec.take();
  EXPECT_EQ(trace.compute_cycles, 0u);
  EXPECT_EQ(trace.events.size(), 1u);
}

TEST(Recorder, CodeTouchStaysInHotWindow) {
  MemoryRecorder rec;
  const Region code{0x10000, 8192, "code"};
  for (int f = 0; f < 100; ++f) rec.touch_code(code, 256);
  const auto trace = rec.take();
  for (const auto& e : trace.events) {
    EXPECT_GE(e.addr, code.base);
    EXPECT_LT(e.addr, code.base + 2048);  // hot window
  }
  EXPECT_GT(trace.compute_cycles, 0u);
}

TEST(TrackedArray, RecordsAddressesAndKeepsData) {
  MemoryRecorder rec;
  const Region r{0x2000, 1024, "heap"};
  TrackedArray<std::uint32_t> arr(&rec, r, 16);
  arr.set(3, 77);
  EXPECT_EQ(arr.get(3), 77u);
  const auto trace = rec.take();
  ASSERT_EQ(trace.events.size(), 2u);
  EXPECT_EQ(trace.events[0].addr, 0x2000u + 3 * 4);
  EXPECT_EQ(trace.events[0].type, AccessType::kWrite);
  EXPECT_EQ(trace.events[0].size, 4u);
  EXPECT_EQ(trace.events[1].type, AccessType::kRead);
}

TEST(TrackedArray, UpdateIsReadModifyWrite) {
  MemoryRecorder rec;
  const Region r{0x0, 256, "heap"};
  TrackedArray<std::uint8_t> arr(&rec, r, 8);
  arr.set(0, 5);
  (void)rec.take();
  arr.update(0, [](std::uint8_t v) { return static_cast<std::uint8_t>(v + 1); });
  const auto trace = rec.take();
  EXPECT_EQ(trace.events.size(), 2u);
  EXPECT_EQ(arr.host_data()[0], 6);
}

TEST(SharedArray, AttributesToCallerRecorder) {
  MemoryRecorder rec_a, rec_b;
  const Region r{0x8000, 256, "seg"};
  SharedArray<std::uint16_t> shared(r, std::vector<std::uint16_t>(8, 1));
  shared.get(rec_a, 2);
  shared.set(rec_b, 3, 9);
  EXPECT_EQ(rec_a.take().events.size(), 1u);
  EXPECT_EQ(rec_b.take().events.size(), 1u);
  EXPECT_EQ(shared.host_data()[3], 9);
}

TEST(TrackedScalar, ReadWrite) {
  MemoryRecorder rec;
  TrackedScalar<int> s(&rec, 0x4000, 5);
  EXPECT_EQ(s.get(), 5);
  s.set(6);
  EXPECT_EQ(s.get(), 6);
  EXPECT_EQ(rec.take().events.size(), 3u);
}

TEST(AddressSpace, AlignedNonOverlappingRegions) {
  AddressSpace space(0x1000, 4096);
  const Region a = space.allocate(100, "a");
  const Region b = space.allocate(5000, "b");
  const Region c = space.allocate(1, "c");
  EXPECT_EQ(a.base % 4096, 0u);
  EXPECT_GE(b.base, a.end());
  EXPECT_GE(c.base, b.end());
  EXPECT_GE(a.size, 100u);
  EXPECT_GE(b.size, 5000u);
  EXPECT_EQ(space.regions().size(), 3u);
}

TEST(AddressSpace, ZeroSizeStillGetsRegion) {
  AddressSpace space;
  const Region r = space.allocate(0, "z");
  EXPECT_GT(r.size, 0u);
}

TEST(Region, Contains) {
  const Region r{100, 50, "r"};
  EXPECT_TRUE(r.contains(100));
  EXPECT_TRUE(r.contains(149));
  EXPECT_FALSE(r.contains(150));
  EXPECT_FALSE(r.contains(99));
}

}  // namespace
}  // namespace cms::sim
