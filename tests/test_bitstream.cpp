// Tests for the MSB-first bit reader/writer.
#include <gtest/gtest.h>

#include "common/bitstream.hpp"
#include "common/rng.hpp"

namespace cms {
namespace {

TEST(BitWriter, PacksMsbFirst) {
  BitWriter bw;
  bw.put(0b101, 3);
  bw.put(0b00001, 5);
  const auto bytes = bw.take();
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0], 0b10100001);
}

TEST(BitWriter, AlignPadsWithOnes) {
  BitWriter bw;
  bw.put(0b0, 1);
  bw.align();
  const auto bytes = bw.take();
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0], 0b01111111);
}

TEST(BitWriter, ThirtyTwoBitValues) {
  BitWriter bw;
  bw.put(0xDEADBEEF, 32);
  const auto bytes = bw.take();
  ASSERT_EQ(bytes.size(), 4u);
  EXPECT_EQ(bytes[0], 0xDE);
  EXPECT_EQ(bytes[3], 0xEF);
}

TEST(BitReader, ReadsBack) {
  const std::uint8_t data[] = {0xA5, 0x3C};
  BitReader br(data, 2);
  EXPECT_EQ(br.get(4), 0xAu);
  EXPECT_EQ(br.get(4), 0x5u);
  EXPECT_EQ(br.get(8), 0x3Cu);
  EXPECT_FALSE(br.exhausted());
}

TEST(BitReader, PeekDoesNotAdvance) {
  const std::uint8_t data[] = {0xF0};
  BitReader br(data, 1);
  EXPECT_EQ(br.peek(4), 0xFu);
  EXPECT_EQ(br.peek(4), 0xFu);
  EXPECT_EQ(br.bit_pos(), 0u);
  br.skip(4);
  EXPECT_EQ(br.peek(4), 0x0u);
}

TEST(BitReader, ExhaustionOnOverrun) {
  const std::uint8_t data[] = {0xFF};
  BitReader br(data, 1);
  br.get(8);
  EXPECT_FALSE(br.exhausted());
  br.get(1);
  EXPECT_TRUE(br.exhausted());
  EXPECT_EQ(br.bits_left(), 0u);
}

TEST(BitReader, AlignSkipsToByteBoundary) {
  const std::uint8_t data[] = {0xFF, 0x81};
  BitReader br(data, 2);
  br.get(3);
  br.align();
  EXPECT_EQ(br.bit_pos(), 8u);
  EXPECT_EQ(br.get(8), 0x81u);
}

class BitstreamRoundtrip : public ::testing::TestWithParam<int> {};

TEST_P(BitstreamRoundtrip, RandomFieldSequences) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 1);
  std::vector<std::pair<std::uint32_t, int>> fields;
  BitWriter bw;
  for (int i = 0; i < 1000; ++i) {
    const int width = 1 + static_cast<int>(rng.below(24));
    const std::uint32_t value =
        static_cast<std::uint32_t>(rng.next_u64()) &
        ((width == 32) ? 0xFFFFFFFFu : ((1u << width) - 1u));
    fields.emplace_back(value, width);
    bw.put(value, width);
  }
  const auto bytes = bw.take();
  BitReader br(bytes.data(), bytes.size());
  for (const auto& [value, width] : fields)
    EXPECT_EQ(br.get(width), value);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitstreamRoundtrip, ::testing::Range(0, 8));

}  // namespace
}  // namespace cms
