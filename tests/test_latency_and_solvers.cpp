// Exact latency arithmetic of the hierarchy and cross-solver consistency
// of the partition planner.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "mem/hierarchy.hpp"
#include "opt/planner.hpp"

namespace cms {
namespace {

TEST(LatencyMath, ColdMissEndToEnd) {
  mem::HierarchyConfig cfg;
  cfg.num_procs = 1;
  cfg.l1_hit_latency = 1;
  cfg.l2_hit_latency = 8;
  cfg.bus.arbitration_latency = 1;
  cfg.bus.cycles_per_transaction = 2;
  cfg.dram.access_latency = 60;
  cfg.dram.bank_occupancy = 12;
  mem::MemoryHierarchy h(cfg);
  // Cold read at t=100, no contention anywhere:
  //   L1 lookup (+1) -> bus grant at 101+1=102? grant = max(now+arb, free)
  //   -> L2 hit latency 8 -> DRAM 60 -> return transfer 2.
  const auto out = h.access(0, 0, 0x1000, 4, AccessType::kRead, 100);
  const Cycle grant = 100 + cfg.l1_hit_latency + cfg.bus.arbitration_latency;
  const Cycle expect =
      grant + cfg.l2_hit_latency + cfg.dram.access_latency +
      cfg.bus.cycles_per_transaction;
  EXPECT_EQ(out.finish, expect);
}

TEST(LatencyMath, L2HitEndToEnd) {
  mem::HierarchyConfig cfg;
  cfg.num_procs = 2;
  mem::MemoryHierarchy h(cfg);
  h.access(1, 0, 0x2000, 4, AccessType::kRead, 0);  // proc 1 warms the L2
  const auto out = h.access(0, 0, 0x2000, 4, AccessType::kRead, 1000);
  const Cycle grant = 1000 + cfg.l1_hit_latency + cfg.bus.arbitration_latency;
  EXPECT_EQ(out.finish, grant + cfg.l2_hit_latency);
  EXPECT_EQ(out.worst, mem::ServedBy::kL2);
}

TEST(LatencyMath, SameBankBackToBackSerializes) {
  mem::HierarchyConfig cfg;
  cfg.num_procs = 2;
  mem::MemoryHierarchy h(cfg);
  // Two cold misses to the same DRAM bank issued at the same time from
  // different processors: the second finishes strictly later than the
  // first by at least the bank occupancy.
  const Addr a = 0x0;
  const Addr b = a + cfg.dram.interleave_bytes * cfg.dram.num_banks;  // same bank
  const auto r1 = h.access(0, 0, a, 4, AccessType::kRead, 0);
  const auto r2 = h.access(1, 1, b, 4, AccessType::kRead, 0);
  EXPECT_GE(r2.finish, r1.finish + cfg.dram.bank_occupancy);
}

// All three MCKP solvers plugged into the *planner* must agree on the
// optimum cost for real measured profiles (greedy may differ, but DP and
// B&B must match exactly).
TEST(PlannerSolvers, DpAndBranchBoundAgreeOnRealProfiles) {
  core::ExperimentConfig cfg;
  cfg.platform.hier.l2.size_bytes = 32 * 1024;
  cfg.profile_grid = {1, 2, 4, 8, 16};
  cfg.profile_runs = 1;
  core::Experiment exp(
      [] { return apps::make_m2v_app(apps::AppConfig::tiny(21)); }, cfg);
  const opt::MissProfile prof = exp.profile();

  opt::PlannerConfig dp_cfg;
  dp_cfg.solver = opt::TaskSolver::kDp;
  opt::PlannerConfig bb_cfg;
  bb_cfg.solver = opt::TaskSolver::kBranchBound;
  opt::PlannerConfig gr_cfg;
  gr_cfg.solver = opt::TaskSolver::kGreedy;

  const auto dp = opt::plan_partitions(prof, exp.tasks(), exp.buffers(),
                                       cfg.platform.hier.l2, dp_cfg);
  const auto bb = opt::plan_partitions(prof, exp.tasks(), exp.buffers(),
                                       cfg.platform.hier.l2, bb_cfg);
  const auto gr = opt::plan_partitions(prof, exp.tasks(), exp.buffers(),
                                       cfg.platform.hier.l2, gr_cfg);
  ASSERT_TRUE(dp.feasible);
  ASSERT_TRUE(bb.feasible);
  ASSERT_TRUE(gr.feasible);
  EXPECT_NEAR(dp.expected_task_misses, bb.expected_task_misses, 1e-6);
  EXPECT_GE(gr.expected_task_misses + 1e-6, dp.expected_task_misses);
}

TEST(PlannerSolvers, GreedyPlanStillRunsCorrectly) {
  core::ExperimentConfig cfg;
  cfg.platform.hier.l2.size_bytes = 32 * 1024;
  cfg.profile_grid = {1, 4, 16};
  cfg.profile_runs = 1;
  cfg.planner.solver = opt::TaskSolver::kGreedy;
  core::Experiment exp(
      [] { return apps::make_jpeg_canny_app(apps::AppConfig::tiny(22)); }, cfg);
  const auto prof = exp.profile();
  const auto plan = exp.plan(prof);
  ASSERT_TRUE(plan.feasible);
  const core::RunOutput out = exp.run_partitioned(plan);
  EXPECT_TRUE(out.verified);
  EXPECT_FALSE(out.results.deadlocked);
}

// Translation fuzz: for random partition tables, translated indices always
// land inside the owning partition and are surjective onto it.
TEST(PlannerSolvers, TranslationCoversPartitionExactly) {
  Rng rng(33);
  for (int trial = 0; trial < 20; ++trial) {
    mem::PartitionTable table(1024);
    const auto base = static_cast<std::uint32_t>(rng.below(512));
    const std::uint32_t size = 1u << rng.below(7);  // 1..64
    ASSERT_TRUE(table.assign(mem::ClientId::task(0), {base, size}));
    std::vector<bool> hit(size, false);
    for (std::uint32_t idx = 0; idx < 2048; ++idx) {
      const std::uint32_t t = table.translate(mem::ClientId::task(0), idx);
      ASSERT_GE(t, base);
      ASSERT_LT(t, base + size);
      hit[t - base] = true;
    }
    for (std::uint32_t s = 0; s < size; ++s)
      EXPECT_TRUE(hit[s]) << "set " << s << " unused";
  }
}

}  // namespace
}  // namespace cms
