// Tests for the full memory hierarchy: L1 -> bus -> partitioned L2 -> DRAM.
#include <gtest/gtest.h>

#include "mem/hierarchy.hpp"

namespace cms::mem {
namespace {

HierarchyConfig tiny_hier() {
  HierarchyConfig cfg;
  cfg.num_procs = 2;
  cfg.l1 = CacheConfig{.size_bytes = 1024, .line_bytes = 64, .ways = 2};
  cfg.l2 = CacheConfig{.size_bytes = 16 * 1024, .line_bytes = 64, .ways = 4};
  cfg.l1_hit_latency = 1;
  cfg.l2_hit_latency = 8;
  return cfg;
}

TEST(Hierarchy, L1HitIsFast) {
  MemoryHierarchy h(tiny_hier());
  h.access(0, 1, 0x1000, 4, AccessType::kRead, 0);  // warm
  const auto out = h.access(0, 1, 0x1000, 4, AccessType::kRead, 100);
  EXPECT_EQ(out.finish, 101u);
  EXPECT_EQ(out.worst, ServedBy::kL1);
  EXPECT_EQ(out.l2_misses, 0u);
}

TEST(Hierarchy, ColdAccessGoesToMemory) {
  MemoryHierarchy h(tiny_hier());
  const auto out = h.access(0, 1, 0x1000, 4, AccessType::kRead, 0);
  EXPECT_EQ(out.worst, ServedBy::kMemory);
  EXPECT_EQ(out.l2_misses, 1u);
  EXPECT_GT(out.finish, 60u);  // at least the DRAM latency
  EXPECT_EQ(h.traffic().dram_accesses, 1u);
}

TEST(Hierarchy, L2HitAfterL1Eviction) {
  MemoryHierarchy h(tiny_hier());
  // L1: 8 sets * 2 ways. Fill set 0 with 3 lines (same L1 set, different
  // L2 sets) to evict the first from L1 while it stays in the larger L2.
  const Addr stride = 8 * 64;
  h.access(0, 1, 0 * stride, 4, AccessType::kRead, 0);
  h.access(0, 1, 1 * stride, 4, AccessType::kRead, 0);
  h.access(0, 1, 2 * stride, 4, AccessType::kRead, 0);
  const auto out = h.access(0, 1, 0, 4, AccessType::kRead, 1000);
  EXPECT_EQ(out.worst, ServedBy::kL2);
  EXPECT_EQ(out.l2_misses, 0u);
}

TEST(Hierarchy, PrivateL1PerProcessor) {
  MemoryHierarchy h(tiny_hier());
  h.access(0, 1, 0x1000, 4, AccessType::kRead, 0);
  // Processor 1's L1 is cold for the same address (but L2 now has it).
  const auto out = h.access(1, 1, 0x1000, 4, AccessType::kRead, 1000);
  EXPECT_EQ(out.worst, ServedBy::kL2);
}

TEST(Hierarchy, MultiLineAccessSplits) {
  MemoryHierarchy h(tiny_hier());
  const auto out = h.access(0, 1, 0x1000, 200, AccessType::kRead, 0);
  EXPECT_EQ(out.l2_misses, 4u);  // 200 bytes starting line-aligned: 4 lines
  EXPECT_EQ(h.l1(0).stats().accesses, 4u);
}

TEST(Hierarchy, UnalignedAccessTouchesBothLines) {
  MemoryHierarchy h(tiny_hier());
  const auto out = h.access(0, 1, 0x103C, 8, AccessType::kRead, 0);  // straddles
  EXPECT_EQ(out.l2_misses, 2u);
}

TEST(Hierarchy, TaskSwitchFlushesL1) {
  MemoryHierarchy h(tiny_hier());
  h.access(0, 1, 0x1000, 4, AccessType::kRead, 0);
  h.on_task_switch(0);
  const auto out = h.access(0, 1, 0x1000, 4, AccessType::kRead, 100);
  EXPECT_NE(out.worst, ServedBy::kL1);  // L1 no longer has it
}

TEST(Hierarchy, DirtyL1VictimWritesIntoL2) {
  MemoryHierarchy h(tiny_hier());
  const Addr stride = 8 * 64;  // L1-set-conflicting addresses
  h.access(0, 1, 0 * stride, 4, AccessType::kWrite, 0);
  h.access(0, 1, 1 * stride, 4, AccessType::kRead, 0);
  const std::uint64_t l2_before = h.traffic().l2_accesses;
  h.access(0, 1, 2 * stride, 4, AccessType::kRead, 0);  // evicts dirty line 0
  // The eviction produced an extra L2 access (the writeback).
  EXPECT_GE(h.traffic().l2_accesses, l2_before + 2);
}

TEST(Hierarchy, OffchipTrafficCountsLineFills) {
  MemoryHierarchy h(tiny_hier());
  h.access(0, 1, 0x0, 4, AccessType::kRead, 0);
  h.access(0, 1, 0x40, 4, AccessType::kRead, 0);
  EXPECT_EQ(h.traffic().offchip_bytes, 2u * 64u);
}

TEST(Hierarchy, ResetStatsClearsEverything) {
  MemoryHierarchy h(tiny_hier());
  h.access(0, 1, 0x0, 4, AccessType::kRead, 0);
  h.reset_stats();
  EXPECT_EQ(h.traffic().l1_accesses, 0u);
  EXPECT_EQ(h.l2().stats().accesses, 0u);
  EXPECT_EQ(h.l1(0).stats().accesses, 0u);
}

TEST(Hierarchy, BusContentionDelaysConcurrentMisses) {
  HierarchyConfig cfg = tiny_hier();
  cfg.bus.cycles_per_transaction = 10;
  MemoryHierarchy h(cfg);
  const auto a = h.access(0, 1, 0x10000, 4, AccessType::kRead, 0);
  const auto b = h.access(1, 2, 0x20000, 4, AccessType::kRead, 0);
  // Same issue time: the second request is granted after the first's bus
  // occupancy, so it finishes later.
  EXPECT_GT(b.finish, a.finish);
}

}  // namespace
}  // namespace cms::mem
