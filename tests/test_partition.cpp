// Tests for Partition / PartitionTable and the index translation that
// implements the paper's set-exclusive cache allocation.
#include <gtest/gtest.h>

#include "mem/partition.hpp"

namespace cms::mem {
namespace {

TEST(Partition, OverlapDetection) {
  const Partition a{0, 8}, b{8, 8}, c{4, 8};
  EXPECT_FALSE(a.overlaps(b));
  EXPECT_FALSE(b.overlaps(a));
  EXPECT_TRUE(a.overlaps(c));
  EXPECT_TRUE(c.overlaps(b));
}

TEST(PartitionTable, AssignAndLookup) {
  PartitionTable table(64);
  EXPECT_TRUE(table.assign(ClientId::task(1), {0, 16}));
  EXPECT_TRUE(table.assign(ClientId::buffer(2), {16, 8}));
  EXPECT_EQ(table.lookup(ClientId::task(1)).base_set, 0u);
  EXPECT_EQ(table.lookup(ClientId::buffer(2)).num_sets, 8u);
  // Task id 2 and buffer id 2 are distinct clients.
  EXPECT_EQ(table.lookup(ClientId::task(2)).num_sets, 64u);  // default
}

TEST(PartitionTable, RejectsOutOfRangeAndEmpty) {
  PartitionTable table(64);
  EXPECT_FALSE(table.assign(ClientId::task(1), {60, 8}));  // beyond end
  EXPECT_FALSE(table.assign(ClientId::task(1), {0, 0}));   // empty
  EXPECT_FALSE(table.has(ClientId::task(1)));
}

TEST(PartitionTable, DefaultPartitionCoversWholeCacheInitially) {
  PartitionTable table(128);
  EXPECT_EQ(table.lookup(ClientId::task(9)).base_set, 0u);
  EXPECT_EQ(table.lookup(ClientId::task(9)).num_sets, 128u);
  table.set_default_partition({120, 8});
  EXPECT_EQ(table.lookup(ClientId::task(9)).base_set, 120u);
}

TEST(PartitionTable, DisjointnessCheck) {
  PartitionTable table(64);
  table.assign(ClientId::task(1), {0, 16});
  table.assign(ClientId::task(2), {16, 16});
  EXPECT_TRUE(table.disjoint());
  table.assign(ClientId::task(3), {24, 16});  // overlaps task 2
  EXPECT_FALSE(table.disjoint());
}

TEST(PartitionTable, AssignedSetsSum) {
  PartitionTable table(64);
  table.assign(ClientId::task(1), {0, 16});
  table.assign(ClientId::buffer(1), {16, 4});
  EXPECT_EQ(table.assigned_sets(), 20u);
}

TEST(PartitionTable, TranslateMapsIntoPartitionRange) {
  PartitionTable table(64);
  table.assign(ClientId::task(1), {32, 8});
  for (std::uint32_t idx = 0; idx < 64; ++idx) {
    const std::uint32_t t = table.translate(ClientId::task(1), idx);
    EXPECT_GE(t, 32u);
    EXPECT_LT(t, 40u);
    EXPECT_EQ(t, 32 + idx % 8);  // power-of-two size: low index bits
  }
}

TEST(PartitionTable, TranslatePreservesDistinctnessWithinPartition) {
  // Two conventional indices that differ modulo the partition size map to
  // different partition sets — the translation only re-bases the index.
  PartitionTable table(64);
  table.assign(ClientId::task(1), {8, 4});
  EXPECT_NE(table.translate(ClientId::task(1), 0),
            table.translate(ClientId::task(1), 1));
  EXPECT_EQ(table.translate(ClientId::task(1), 0),
            table.translate(ClientId::task(1), 4));
}

TEST(PartitionTable, UnassignRestoresDefault) {
  PartitionTable table(64);
  table.assign(ClientId::task(1), {0, 4});
  table.unassign(ClientId::task(1));
  EXPECT_EQ(table.lookup(ClientId::task(1)).num_sets, 64u);
}

TEST(PartitionTable, EntriesAreSorted) {
  PartitionTable table(64);
  table.assign(ClientId::buffer(3), {0, 4});
  table.assign(ClientId::task(1), {4, 4});
  table.assign(ClientId::task(0), {8, 4});
  const auto entries = table.entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_TRUE(entries[0].first < entries[1].first);
  EXPECT_TRUE(entries[1].first < entries[2].first);
}

TEST(ClientId, OrderingAndEquality) {
  EXPECT_EQ(ClientId::task(1), ClientId::task(1));
  EXPECT_NE(ClientId::task(1), ClientId::buffer(1));
  EXPECT_LT(ClientId::task(1), ClientId::task(2));
  EXPECT_EQ(ClientId::task(3).to_string(), "task:3");
  EXPECT_EQ(ClientId::buffer(4).to_string(), "buf:4");
}

}  // namespace
}  // namespace cms::mem
