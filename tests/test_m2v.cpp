// Tests for the MPEG2-like codec and its 13-task KPN decoder.
#include <gtest/gtest.h>

#include "apps/codec/vlc.hpp"
#include "apps/m2v/m2v_codec.hpp"
#include "apps/m2v/m2v_kpn.hpp"
#include "sim/engine.hpp"
#include "sim/os.hpp"
#include "sim/platform.hpp"

namespace cms::apps {
namespace {

std::vector<Image> test_video(int w, int h, int frames, std::uint64_t seed) {
  std::vector<Image> v;
  for (int f = 0; f < frames; ++f)
    v.push_back(testimg::moving_boxes(w, h, f, seed));
  return v;
}

TEST(M2vCodec, RoundtripQuality) {
  const auto video = test_video(48, 32, 4, 55);
  const M2vStream s = m2v_encode(video, 6);
  const auto dec = m2v_reference_decode(s);
  ASSERT_EQ(dec.size(), video.size());
  for (std::size_t f = 0; f < video.size(); ++f)
    EXPECT_GT(psnr(video[f], dec[f]), 28.0) << "frame " << f;
}

TEST(M2vCodec, PFramesAreSmallerThanIFrames) {
  // Static scene: each P frame (zero MVs, all-zero blocks, EOB codes only)
  // must cost well under the I frame.
  std::vector<Image> video(4, testimg::gradient(64, 48, 5));
  const M2vStream s = m2v_encode(video, 8);
  const M2vStream i_only = m2v_encode({video[0]}, 8);
  const std::size_t i_payload = i_only.bytes.size() - kM2vSeqHeaderBytes;
  const std::size_t p_total = s.bytes.size() - i_only.bytes.size();
  EXPECT_LT(p_total / 3, i_payload / 2);
}

TEST(M2vCodec, SequenceHeaderParses) {
  const auto video = test_video(48, 32, 2, 1);
  const M2vStream s = m2v_encode(video, 8);
  int w = 0, h = 0, n = 0, q = 0;
  ASSERT_TRUE(m2v_parse_seq_header(s.bytes.data(), w, h, n, q));
  EXPECT_EQ(w, 48);
  EXPECT_EQ(h, 32);
  EXPECT_EQ(n, 2);
  EXPECT_EQ(q, 8);
}

TEST(M2vCodec, BadMagicRejected) {
  std::uint8_t bad[8] = {'X', 'X', 1, 1, 1, 0, 8, 0};
  int w, h, n, q;
  EXPECT_FALSE(m2v_parse_seq_header(bad, w, h, n, q));
}

TEST(M2vCodec, BlockLevelRoundtrip) {
  BitWriter bw;
  std::int16_t zz[64] = {};
  zz[0] = 5;
  zz[3] = -2;
  zz[63] = 1;
  // Encode using the same scheme as the encoder.
  // (run, level) pairs: (0,5), (2,-2), (59,1), EOB.
  put_ue(bw, 0); put_se(bw, 5);
  put_ue(bw, 2); put_se(bw, -2);
  put_ue(bw, 59); put_se(bw, 1);
  put_ue(bw, 64);
  const auto bytes = bw.take();
  BitReader br(bytes.data(), bytes.size());
  std::int16_t out[64];
  m2v_decode_block_levels(br, out);
  for (int k = 0; k < 64; ++k) EXPECT_EQ(out[k], zz[k]) << k;
}

TEST(M2vCodec, MaxFramePayloadTracked) {
  const auto video = test_video(48, 32, 3, 2);
  const M2vStream s = m2v_encode(video, 8);
  EXPECT_GT(s.max_frame_payload, 0u);
  EXPECT_LT(s.max_frame_payload, s.bytes.size());
}

TEST(M2vCodec, DeterministicEncoding) {
  const auto video = test_video(32, 32, 3, 3);
  EXPECT_EQ(m2v_encode(video, 8).bytes, m2v_encode(video, 8).bytes);
}

// ---- KPN pipeline ----

struct M2vFixture {
  std::vector<Image> video;
  M2vStream stream;
  kpn::Network net;
  SharedCodecTables tables;
  M2vPipeline pipe;

  explicit M2vFixture(int w = 48, int h = 32, int frames = 3,
                      std::uint64_t seed = 71)
      : video(test_video(w, h, frames, seed)),
        stream(m2v_encode(video, 8)),
        tables(net.make_segment("appl_data", 4096), 75) {
    pipe = add_m2v_decoder(net, stream, tables);
  }

  sim::SimResults run(std::uint32_t procs = 4) {
    sim::PlatformConfig pc;
    pc.hier.num_procs = procs;
    pc.hier.l2.size_bytes = 64 * 1024;
    sim::Platform platform(pc);
    for (const auto& b : net.buffers())
      platform.hierarchy().l2().interval_table().add(b.base, b.footprint, b.id);
    sim::Os os(sim::SchedPolicy::kMigrating, procs);
    sim::TimingEngine engine(platform, os, net.tasks());
    engine.set_buffer_names(net.buffer_names());
    return engine.run();
  }
};

TEST(M2vKpn, ThirteenTasksWithPaperNames) {
  M2vFixture fx;
  for (const char* name :
       {"input", "vld", "hdr", "isiq", "memMan", "idct", "add", "decMV",
        "predict", "predictRD", "writeMB", "store", "output"})
    EXPECT_NE(fx.net.find_process(name), nullptr) << name;
  EXPECT_EQ(fx.net.processes().size(), 13u);
}

TEST(M2vKpn, DecodesBitExactVsReference) {
  M2vFixture fx;
  const sim::SimResults res = fx.run();
  EXPECT_FALSE(res.deadlocked);
  EXPECT_TRUE(fx.net.all_tasks_done());

  const auto want = m2v_reference_decode(fx.stream);
  ASSERT_EQ(fx.pipe.output->frames().size(), want.size());
  for (std::size_t f = 0; f < want.size(); ++f)
    EXPECT_EQ(fx.pipe.output->frames()[f], want[f].pixels()) << "frame " << f;
}

TEST(M2vKpn, LongerSequenceRecyclesFrameSlots) {
  M2vFixture fx(32, 32, 6, 72);
  const sim::SimResults res = fx.run();
  EXPECT_FALSE(res.deadlocked);
  const auto want = m2v_reference_decode(fx.stream);
  ASSERT_EQ(fx.pipe.output->frames().size(), 6u);
  EXPECT_EQ(fx.pipe.output->frames().back(), want.back().pixels());
}

TEST(M2vKpn, ResultIndependentOfProcessorCount) {
  std::uint64_t sum1, sum4;
  {
    M2vFixture fx(32, 32, 3, 73);
    fx.run(1);
    sum1 = fx.pipe.output->checksum();
  }
  {
    M2vFixture fx(32, 32, 3, 73);
    fx.run(4);
    sum4 = fx.pipe.output->checksum();
  }
  EXPECT_EQ(sum1, sum4);  // Kahn determinism
}

TEST(M2vKpn, AllTasksFire) {
  M2vFixture fx;
  const sim::SimResults res = fx.run();
  for (const auto& t : res.tasks) EXPECT_GT(t.firings, 0u) << t.name;
}

TEST(M2vKpn, FrameBuffersSeeTraffic) {
  M2vFixture fx;
  const sim::SimResults res = fx.run();
  for (const char* name : {"m2vFrame0", "m2vFrame1", "m2vDisplay"}) {
    const sim::BufferRunStats* b = res.find_buffer(name);
    ASSERT_NE(b, nullptr) << name;
    EXPECT_GT(b->l2.accesses, 0u) << name;
  }
}

}  // namespace
}  // namespace cms::apps
