// Tests for the StoreBackend seam (opt/store_backend.hpp): the storage
// contract every implementation must satisfy (get/put/stat/remove/list
// with the vanished-vs-corrupt failure model), DirBackend's filesystem
// specifics (atomic publish, failed-unlink reporting, deterministic
// stalest-first listing with digest tie-breaks), MemBackend parity, and
// the TieredBackend composition: read-through with promote-on-hit,
// write-through, L1-only remove/list, and the degradation guarantee —
// every L2 failure is counted and logged, never surfaced as an error.
//
// opt::NetBackend (the tcp:// far tier) runs the SAME contract suite
// against an in-process blob server (net::FrameServer +
// opt::handle_blob_request over a MemBackend), plus a fault-injection
// suite: server gone mid-conversation, garbage and corrupted response
// frames, connection refused, stale-pool recovery across a server
// restart — and the flapping-L2 stress re-runs with the network in the
// loop, same counter algebra.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "net/frame_server.hpp"
#include "opt/blob_protocol.hpp"
#include "opt/net_backend.hpp"
#include "opt/store_backend.hpp"

namespace cms::opt {
namespace {

namespace fs = std::filesystem;

/// Fresh directory under the system temp dir, removed on destruction.
struct TempDir {
  fs::path path;
  TempDir() {
    static int counter = 0;
    path = fs::temp_directory_path() /
           ("cms-backend-test-" + std::to_string(::getpid()) + "-" +
            std::to_string(counter++));
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string file(const std::string& name) const {
    return (path / name).string();
  }
};

StoreBackend::Blob blob_of(const std::string& text) {
  return StoreBackend::Blob(text.begin(), text.end());
}

/// Wraps a MemBackend and throws on demand, per operation — the shape of
/// a far tier whose network/filesystem is failing. Flags are atomic so
/// the tiered stress test may flip them mid-run.
class FailingBackend final : public StoreBackend {
 public:
  std::atomic<bool> fail_get{false};
  std::atomic<bool> fail_put{false};
  std::atomic<bool> fail_stat{false};

  std::string describe() const override { return "failing"; }
  std::optional<Blob> get(BlobKind kind, const std::string& digest) override {
    if (fail_get.load()) throw std::runtime_error("injected get failure");
    return inner_.get(kind, digest);
  }
  void put(BlobKind kind, const std::string& digest,
           const Blob& bytes) override {
    if (fail_put.load()) throw std::runtime_error("injected put failure");
    inner_.put(kind, digest, bytes);
  }
  std::optional<std::uint64_t> stat(BlobKind kind,
                                    const std::string& digest) override {
    if (fail_stat.load()) throw std::runtime_error("injected stat failure");
    return inner_.stat(kind, digest);
  }
  RemoveOutcome remove(BlobKind kind, const std::string& digest) override {
    return inner_.remove(kind, digest);
  }
  std::vector<ListedBlob> list(BlobKind kind) override {
    return inner_.list(kind);
  }

 private:
  MemBackend inner_;
};

/// An in-process blob server + NetBackend client over it: the loopback
/// version of the example_blob_server deployment, close enough to the
/// real thing that the full backend contract can run over the wire.
struct NetHarness {
  std::shared_ptr<StoreBackend> exported;
  std::unique_ptr<net::FrameServer> server;
  std::shared_ptr<NetBackend> client;
  bool writable = true;

  ~NetHarness() { stop_server(); }

  void stop_server() {
    if (!server) return;
    server->shutdown();
    server->join();
    server.reset();
  }

  /// A fresh server over the same exported backend on the SAME port —
  /// what a daemon restart looks like to a client with pooled sockets.
  void restart_server() {
    const std::uint16_t port = server ? server->port() : 0;
    stop_server();
    start_server(port);
  }

  void start_server(std::uint16_t port) {
    net::FrameServerConfig scfg;
    scfg.port = port;
    scfg.workers = 4;
    scfg.busy_response = blob_error_response("busy");
    scfg.fatal_response = blob_error_response("bad frame");
    const std::shared_ptr<StoreBackend> backend = exported;
    const bool rw = writable;
    scfg.handler = [backend, rw](const std::string& payload) {
      return handle_blob_request(*backend, payload, rw);
    };
    server = std::make_unique<net::FrameServer>(std::move(scfg));
    server->start();
  }
};

std::shared_ptr<NetHarness> make_net_harness(
    std::shared_ptr<StoreBackend> exported, NetBackendConfig ccfg = {},
    bool writable = true) {
  auto h = std::make_shared<NetHarness>();
  h->exported = std::move(exported);
  h->writable = writable;
  h->start_server(0);
  ccfg.port = h->server->port();
  h->client = std::make_shared<NetBackend>(ccfg);
  return h;
}

/// Client config tuned so deliberate faults fail in milliseconds, not
/// the production multi-second timeouts.
NetBackendConfig fast_fail_config() {
  NetBackendConfig cfg;
  cfg.connect_timeout_ms = 250;
  cfg.io_timeout_ms = 500;
  cfg.retry_backoff_ms = 1;
  return cfg;
}

// ---- The contract every backend satisfies (Dir, Mem and Net) ----

struct BackendFactory {
  const char* name;
  std::function<std::shared_ptr<StoreBackend>(TempDir&)> make;
};

std::vector<BackendFactory> contract_backends() {
  return {
      {"dir",
       [](TempDir& tmp) {
         return std::make_shared<DirBackend>(tmp.file("store"));
       }},
      {"mem", [](TempDir&) { return std::make_shared<MemBackend>(); }},
      {"net",
       [](TempDir&) -> std::shared_ptr<StoreBackend> {
         const auto h = make_net_harness(std::make_shared<MemBackend>());
         // Alias: the contract test holds one pointer; the harness
         // (server + exported store) rides along until it drops.
         return std::shared_ptr<StoreBackend>(h, h->client.get());
       }},
  };
}

TEST(StoreBackendContract, PutGetStatRemoveRoundTrip) {
  for (const BackendFactory& f : contract_backends()) {
    SCOPED_TRACE(f.name);
    TempDir tmp;
    const auto b = f.make(tmp);
    EXPECT_FALSE(b->get(BlobKind::kTrace, "k").has_value());
    EXPECT_FALSE(b->stat(BlobKind::kTrace, "k").has_value());
    EXPECT_FALSE(b->contains(BlobKind::kTrace, "k"));

    const StoreBackend::Blob bytes = blob_of("capture payload");
    b->put(BlobKind::kTrace, "k", bytes);
    const auto got = b->get(BlobKind::kTrace, "k");
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, bytes);
    const auto sz = b->stat(BlobKind::kTrace, "k");
    ASSERT_TRUE(sz.has_value());
    EXPECT_EQ(*sz, bytes.size());
    EXPECT_TRUE(b->contains(BlobKind::kTrace, "k"));

    EXPECT_EQ(b->remove(BlobKind::kTrace, "k"),
              StoreBackend::RemoveOutcome::kRemoved);
    EXPECT_EQ(b->remove(BlobKind::kTrace, "k"),
              StoreBackend::RemoveOutcome::kVanished);
    EXPECT_FALSE(b->get(BlobKind::kTrace, "k").has_value());
  }
}

TEST(StoreBackendContract, KindsAreIndependentNamespaces) {
  for (const BackendFactory& f : contract_backends()) {
    SCOPED_TRACE(f.name);
    TempDir tmp;
    const auto b = f.make(tmp);
    b->put(BlobKind::kTrace, "k", blob_of("trace"));
    b->put(BlobKind::kPlan, "k", blob_of("plan!"));
    EXPECT_EQ(*b->get(BlobKind::kTrace, "k"), blob_of("trace"));
    EXPECT_EQ(*b->get(BlobKind::kPlan, "k"), blob_of("plan!"));
    // Removing one kind's entry leaves the other kind's alone.
    EXPECT_EQ(b->remove(BlobKind::kTrace, "k"),
              StoreBackend::RemoveOutcome::kRemoved);
    EXPECT_TRUE(b->contains(BlobKind::kPlan, "k"));
    ASSERT_EQ(b->list(BlobKind::kPlan).size(), 1u);
    EXPECT_TRUE(b->list(BlobKind::kTrace).empty());
  }
}

TEST(StoreBackendContract, ListReportsDigestAndSizeInWriteOrder) {
  for (const BackendFactory& f : contract_backends()) {
    SCOPED_TRACE(f.name);
    TempDir tmp;
    const auto b = f.make(tmp);
    b->put(BlobKind::kTrace, "bb", blob_of("22"));
    b->put(BlobKind::kTrace, "aa", blob_of("4444"));
    const auto rows = b->list(BlobKind::kTrace);
    ASSERT_EQ(rows.size(), 2u);
    // Write order (mtime/seq) wins over lexical order when distinct.
    // DirBackend mtimes may collide within the same second, where the
    // digest tie-break makes lexical order correct too — accept both
    // orders but require digest/size integrity.
    std::uint64_t aa = 0, bb = 0;
    for (const auto& r : rows) {
      if (r.digest == "aa") aa = r.bytes;
      if (r.digest == "bb") bb = r.bytes;
    }
    EXPECT_EQ(aa, 4u);
    EXPECT_EQ(bb, 2u);
  }
}

TEST(StoreBackendContract, RewritingAKeyReplacesItsBytes) {
  for (const BackendFactory& f : contract_backends()) {
    SCOPED_TRACE(f.name);
    TempDir tmp;
    const auto b = f.make(tmp);
    b->put(BlobKind::kTrace, "k", blob_of("old"));
    b->put(BlobKind::kTrace, "k", blob_of("newer"));
    EXPECT_EQ(*b->get(BlobKind::kTrace, "k"), blob_of("newer"));
    EXPECT_EQ(b->list(BlobKind::kTrace).size(), 1u);
  }
}

// ---- DirBackend filesystem specifics ----

TEST(DirBackend, EmptyDirThrows) {
  EXPECT_THROW(DirBackend(""), std::runtime_error);
}

TEST(DirBackend, CreateFalseToleratesMissingDirectory) {
  TempDir tmp;
  DirBackend b(tmp.file("never-created"), /*create=*/false);
  EXPECT_FALSE(fs::exists(tmp.file("never-created")));
  EXPECT_FALSE(b.get(BlobKind::kTrace, "k").has_value());
  EXPECT_FALSE(b.stat(BlobKind::kTrace, "k").has_value());
  EXPECT_TRUE(b.list(BlobKind::kTrace).empty());
  EXPECT_EQ(b.remove(BlobKind::kTrace, "k"),
            StoreBackend::RemoveOutcome::kVanished);
}

TEST(DirBackend, UsesHistoricalFlatLayout) {
  TempDir tmp;
  DirBackend b(tmp.file("store"));
  b.put(BlobKind::kTrace, "abc123", blob_of("t"));
  b.put(BlobKind::kPlan, "abc123", blob_of("p"));
  EXPECT_TRUE(fs::exists(tmp.file("store") + "/abc123.cmstrace"));
  EXPECT_TRUE(fs::exists(tmp.file("store") + "/abc123.cmsplan"));
  EXPECT_EQ(b.path_of(BlobKind::kTrace, "abc123"),
            (fs::path(tmp.file("store")) / "abc123.cmstrace").string());
}

TEST(DirBackend, NoTempFilesSurviveAPut) {
  TempDir tmp;
  DirBackend b(tmp.file("store"));
  b.put(BlobKind::kTrace, "k", blob_of("payload"));
  std::size_t files = 0;
  for (const auto& e : fs::directory_iterator(tmp.file("store"))) {
    (void)e;
    ++files;
  }
  EXPECT_EQ(files, 1u);
}

TEST(DirBackend, StatOfUnstatableEntryReportsUnknownSize) {
  TempDir tmp;
  DirBackend b(tmp.file("store"));
  // A directory wearing an entry's name: present, but file_size fails.
  fs::create_directory(b.path_of(BlobKind::kTrace, "ghost"));
  const auto sz = b.stat(BlobKind::kTrace, "ghost");
  ASSERT_TRUE(sz.has_value());
  EXPECT_EQ(*sz, 0u);
}

TEST(DirBackend, GetOfUnseekableEntryThrowsInsteadOfHugeAlloc) {
  // Regression: a FIFO (or device node) wearing an entry's name opens
  // fine but cannot seek, so tellg() reports -1 — which the old code
  // cast straight to size_t and passed to the Blob constructor as a
  // SIZE_MAX allocation. Present-but-unreadable must throw, with the
  // path in the message.
  TempDir tmp;
  DirBackend b(tmp.file("store"));
  const std::string path = b.path_of(BlobKind::kTrace, "fifo");
  ASSERT_EQ(::mkfifo(path.c_str(), 0600), 0) << strerror(errno);
  // Hold an O_RDWR end open so the read-side open below cannot block.
  const int holder = ::open(path.c_str(), O_RDWR);
  ASSERT_GE(holder, 0);
  try {
    b.get(BlobKind::kTrace, "fifo");
    FAIL() << "get() of a FIFO entry did not throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos);
  }
  ::close(holder);
}

TEST(DirBackend, RemoveOfStuckEntryReportsFailed) {
  TempDir tmp;
  DirBackend b(tmp.file("store"));
  // A NON-EMPTY directory at the entry's path: unlink fails (ENOTEMPTY),
  // and the backend must say so rather than claim kRemoved/kVanished.
  fs::create_directories(fs::path(b.path_of(BlobKind::kTrace, "stuck")) /
                         "sub");
  EXPECT_EQ(b.remove(BlobKind::kTrace, "stuck"),
            StoreBackend::RemoveOutcome::kFailed);
}

TEST(DirBackend, ListBreaksMtimeTiesByDigest) {
  // The reopen-nondeterminism regression (satellite of this PR): two
  // entries written within one filesystem-timestamp quantum used to be
  // indexed in directory-iteration order, so which one a budgeted reopen
  // evicted first varied across runs. Ties now break by digest.
  TempDir tmp;
  DirBackend b(tmp.file("store"));
  // Deliberately non-lexical write order.
  b.put(BlobKind::kTrace, "cc", blob_of("3"));
  b.put(BlobKind::kTrace, "aa", blob_of("1"));
  b.put(BlobKind::kTrace, "bb", blob_of("2"));
  // Force identical mtimes regardless of filesystem timestamp precision.
  const auto stamp =
      fs::last_write_time(b.path_of(BlobKind::kTrace, "aa"));
  for (const char* d : {"aa", "bb", "cc"})
    fs::last_write_time(b.path_of(BlobKind::kTrace, d), stamp);
  const auto rows = b.list(BlobKind::kTrace);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].digest, "aa");
  EXPECT_EQ(rows[1].digest, "bb");
  EXPECT_EQ(rows[2].digest, "cc");
}

TEST(DirBackend, ListOrdersStalestFirstAcrossDistinctMtimes) {
  TempDir tmp;
  DirBackend b(tmp.file("store"));
  b.put(BlobKind::kTrace, "newer", blob_of("n"));
  b.put(BlobKind::kTrace, "older", blob_of("o"));
  // Make "older" decisively older than "newer" without sleeping.
  const std::string older = b.path_of(BlobKind::kTrace, "older");
  fs::last_write_time(older,
                      fs::last_write_time(older) - std::chrono::hours(1));
  const auto rows = b.list(BlobKind::kTrace);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].digest, "older");
  EXPECT_EQ(rows[1].digest, "newer");
}

// ---- MemBackend specifics ----

TEST(MemBackend, ListOrdersByInsertionIncludingRewrites) {
  MemBackend b;
  b.put(BlobKind::kTrace, "x", blob_of("1"));
  b.put(BlobKind::kTrace, "y", blob_of("2"));
  b.put(BlobKind::kTrace, "x", blob_of("3"));  // rewrite freshens x
  const auto rows = b.list(BlobKind::kTrace);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].digest, "y");
  EXPECT_EQ(rows[1].digest, "x");
}

TEST(MemBackend, SharedInstanceModelsReopen) {
  // The documented pattern: one MemBackend shared by several store
  // instances stands in for a directory shared by several processes.
  const auto b = std::make_shared<MemBackend>();
  b->put(BlobKind::kTrace, "k", blob_of("payload"));
  const std::shared_ptr<StoreBackend> reopened = b;
  EXPECT_TRUE(reopened->contains(BlobKind::kTrace, "k"));
  EXPECT_EQ(reopened->list(BlobKind::kTrace).size(), 1u);
}

// ---- TieredBackend composition ----

TEST(TieredBackend, NullTierIsRejected) {
  const auto mem = std::make_shared<MemBackend>();
  EXPECT_THROW(TieredBackend(nullptr, mem), std::invalid_argument);
  EXPECT_THROW(TieredBackend(mem, nullptr), std::invalid_argument);
}

TEST(TieredBackend, ReadThroughPromotesL2HitsIntoL1) {
  const auto l1 = std::make_shared<MemBackend>();
  const auto l2 = std::make_shared<MemBackend>();
  TieredBackend tiered(l1, l2);
  l2->put(BlobKind::kTrace, "k", blob_of("far bytes"));

  const auto got = tiered.get(BlobKind::kTrace, "k");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, blob_of("far bytes"));
  EXPECT_TRUE(l1->contains(BlobKind::kTrace, "k"));  // promoted

  const auto again = tiered.get(BlobKind::kTrace, "k");  // now near
  ASSERT_TRUE(again.has_value());
  const auto c = tiered.tier_counters();
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->l1_misses, 1u);
  EXPECT_EQ(c->l2_hits, 1u);
  EXPECT_EQ(c->promotions, 1u);
  EXPECT_EQ(c->l1_hits, 1u);
  EXPECT_EQ(c->l2_errors, 0u);
}

TEST(TieredBackend, PromoteCanBeDisabled) {
  const auto l1 = std::make_shared<MemBackend>();
  const auto l2 = std::make_shared<MemBackend>();
  TieredBackend::Config cfg;
  cfg.l1 = l1;
  cfg.l2 = l2;
  cfg.promote = false;
  TieredBackend tiered(std::move(cfg));
  l2->put(BlobKind::kTrace, "k", blob_of("far"));
  EXPECT_TRUE(tiered.get(BlobKind::kTrace, "k").has_value());
  EXPECT_TRUE(tiered.get(BlobKind::kTrace, "k").has_value());
  EXPECT_FALSE(l1->contains(BlobKind::kTrace, "k"));
  const auto c = tiered.tier_counters();
  EXPECT_EQ(c->l2_hits, 2u);  // every read pays the far trip
  EXPECT_EQ(c->promotions, 0u);
}

TEST(TieredBackend, PutWritesThroughToBothTiers) {
  const auto l1 = std::make_shared<MemBackend>();
  const auto l2 = std::make_shared<MemBackend>();
  TieredBackend tiered(l1, l2);
  tiered.put(BlobKind::kPlan, "k", blob_of("plan"));
  EXPECT_TRUE(l1->contains(BlobKind::kPlan, "k"));
  EXPECT_TRUE(l2->contains(BlobKind::kPlan, "k"));
  const auto c = tiered.tier_counters();
  EXPECT_EQ(c->l1_writes, 1u);
  EXPECT_EQ(c->l2_writes, 1u);
}

TEST(TieredBackend, ReadOnlyL2IsNeverWritten) {
  const auto l1 = std::make_shared<MemBackend>();
  const auto l2 = std::make_shared<MemBackend>();
  TieredBackend tiered(l1, l2, /*l2_writable=*/false);
  tiered.put(BlobKind::kTrace, "k", blob_of("local only"));
  EXPECT_TRUE(l1->contains(BlobKind::kTrace, "k"));
  EXPECT_FALSE(l2->contains(BlobKind::kTrace, "k"));
  EXPECT_EQ(tiered.tier_counters()->l2_writes, 0u);
}

TEST(TieredBackend, RemoveAndListTouchOnlyL1) {
  // A local budget eviction must never delete the fleet-shared copy —
  // and the reopen index seeds only the near tier.
  const auto l1 = std::make_shared<MemBackend>();
  const auto l2 = std::make_shared<MemBackend>();
  TieredBackend tiered(l1, l2);
  tiered.put(BlobKind::kTrace, "k", blob_of("v"));
  EXPECT_EQ(tiered.remove(BlobKind::kTrace, "k"),
            StoreBackend::RemoveOutcome::kRemoved);
  EXPECT_FALSE(l1->contains(BlobKind::kTrace, "k"));
  EXPECT_TRUE(l2->contains(BlobKind::kTrace, "k"));
  EXPECT_TRUE(tiered.list(BlobKind::kTrace).empty());
  // The evicted entry is still one read-through away.
  EXPECT_TRUE(tiered.get(BlobKind::kTrace, "k").has_value());
}

TEST(TieredBackend, StatFallsBackToL2) {
  const auto l1 = std::make_shared<MemBackend>();
  const auto l2 = std::make_shared<MemBackend>();
  TieredBackend tiered(l1, l2);
  l2->put(BlobKind::kTrace, "k", blob_of("12345"));
  const auto sz = tiered.stat(BlobKind::kTrace, "k");
  ASSERT_TRUE(sz.has_value());
  EXPECT_EQ(*sz, 5u);
  EXPECT_FALSE(tiered.stat(BlobKind::kTrace, "absent").has_value());
}

// ---- TieredBackend degradation: L2 failures are never errors ----

TEST(TieredBackend, L2GetFailureDegradesToAMiss) {
  const auto l1 = std::make_shared<MemBackend>();
  const auto l2 = std::make_shared<FailingBackend>();
  TieredBackend tiered(l1, l2);
  l2->put(BlobKind::kTrace, "k", blob_of("unreachable"));
  l2->fail_get = true;
  EXPECT_NO_THROW({
    EXPECT_FALSE(tiered.get(BlobKind::kTrace, "k").has_value());
  });
  EXPECT_EQ(tiered.tier_counters()->l2_errors, 1u);
  // L1 entries keep being served while the far tier is down.
  tiered.put(BlobKind::kTrace, "local", blob_of("near"));
  EXPECT_TRUE(tiered.get(BlobKind::kTrace, "local").has_value());
}

TEST(TieredBackend, L2PutFailureLeavesEntryL1Only) {
  const auto l1 = std::make_shared<MemBackend>();
  const auto l2 = std::make_shared<FailingBackend>();
  TieredBackend tiered(l1, l2);
  l2->fail_put = true;
  EXPECT_NO_THROW(tiered.put(BlobKind::kTrace, "k", blob_of("v")));
  EXPECT_TRUE(l1->contains(BlobKind::kTrace, "k"));
  EXPECT_FALSE(l2->contains(BlobKind::kTrace, "k"));
  const auto c = tiered.tier_counters();
  EXPECT_EQ(c->l1_writes, 1u);
  EXPECT_EQ(c->l2_writes, 0u);
  EXPECT_EQ(c->l2_errors, 1u);
}

TEST(TieredBackend, L2StatFailureDegradesToAbsent) {
  const auto l1 = std::make_shared<MemBackend>();
  const auto l2 = std::make_shared<FailingBackend>();
  TieredBackend tiered(l1, l2);
  l2->put(BlobKind::kTrace, "k", blob_of("v"));
  l2->fail_stat = true;
  EXPECT_NO_THROW({
    EXPECT_FALSE(tiered.stat(BlobKind::kTrace, "k").has_value());
  });
  EXPECT_EQ(tiered.tier_counters()->l2_errors, 1u);
}

TEST(TieredBackend, L1FailurePropagatesFromPut) {
  // The near tier IS the correctness boundary: its put failures must
  // surface, not degrade.
  const auto l1 = std::make_shared<FailingBackend>();
  const auto l2 = std::make_shared<MemBackend>();
  TieredBackend tiered(l1, l2);
  l1->fail_put = true;
  EXPECT_THROW(tiered.put(BlobKind::kTrace, "k", blob_of("v")),
               std::runtime_error);
}

TEST(TieredBackend, FailedPromotionIsStillAHit) {
  const auto l1 = std::make_shared<FailingBackend>();
  const auto l2 = std::make_shared<MemBackend>();
  TieredBackend tiered(l1, l2);
  l2->put(BlobKind::kTrace, "k", blob_of("far"));
  l1->fail_put = true;  // promotion will fail; the read must not
  const auto got = tiered.get(BlobKind::kTrace, "k");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, blob_of("far"));
  const auto c = tiered.tier_counters();
  EXPECT_EQ(c->l2_hits, 1u);
  EXPECT_EQ(c->promotions, 0u);           // never counted as promoted
  EXPECT_EQ(c->promotion_failures, 1u);   // ...but no longer log-only
  EXPECT_EQ(c->l2_errors, 0u);  // the FAR tier answered fine
}

TEST(TieredBackend, TierCountersJsonSurfacesPromotionFailures) {
  // The stats JSON plan_server and the benches emit is built by one
  // shared helper; pin that new counters (promotion_failures) show up
  // there instead of silently falling out of the reports.
  const auto l1 = std::make_shared<FailingBackend>();
  const auto l2 = std::make_shared<MemBackend>();
  TieredBackend tiered(l1, l2);
  l2->put(BlobKind::kTrace, "k", blob_of("far"));
  l1->fail_put = true;
  ASSERT_TRUE(tiered.get(BlobKind::kTrace, "k").has_value());

  const std::string json = tier_counters_json(tiered.tier_counters());
  EXPECT_NE(json.find("\"tiers\""), std::string::npos);
  EXPECT_NE(json.find("\"promotion_failures\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"l2_hits\": 1"), std::string::npos);
  // And the no-tiers case renders as nothing, not broken JSON.
  EXPECT_EQ(tier_counters_json(std::nullopt), "");
}

TEST(TieredBackend, DescribeNamesBothTiers) {
  TempDir tmp;
  const auto l1 = std::make_shared<DirBackend>(tmp.file("near"));
  const auto l2 = std::make_shared<MemBackend>();
  TieredBackend tiered(l1, l2);
  EXPECT_EQ(tiered.describe(), "tiered(dir:" + tmp.file("near") + ", mem)");
}

// ---- NetBackend: endpoint parsing and fault injection ----

TEST(NetBackend, ParseTcpEndpointAcceptsHostColonPort) {
  const NetBackendConfig cfg = parse_tcp_endpoint("tcp://10.1.2.3:9000");
  EXPECT_EQ(cfg.host, "10.1.2.3");
  EXPECT_EQ(cfg.port, 9000);
}

TEST(NetBackend, ParseTcpEndpointRejectsMalformedUrls) {
  EXPECT_THROW(parse_tcp_endpoint("10.1.2.3:9000"), std::runtime_error);
  EXPECT_THROW(parse_tcp_endpoint("tcp://"), std::runtime_error);
  EXPECT_THROW(parse_tcp_endpoint("tcp://hostonly"), std::runtime_error);
  EXPECT_THROW(parse_tcp_endpoint("tcp://:9000"), std::runtime_error);
  EXPECT_THROW(parse_tcp_endpoint("tcp://h:"), std::runtime_error);
  EXPECT_THROW(parse_tcp_endpoint("tcp://h:port"), std::runtime_error);
  EXPECT_THROW(parse_tcp_endpoint("tcp://h:0"), std::runtime_error);
  EXPECT_THROW(parse_tcp_endpoint("tcp://h:70000"), std::runtime_error);
}

TEST(NetBackend, DescribeNamesTheEndpoint) {
  const auto h = make_net_harness(std::make_shared<MemBackend>());
  EXPECT_EQ(h->client->describe(),
            "tcp://127.0.0.1:" + std::to_string(h->server->port()));
}

TEST(NetBackend, ReadOnlyExportRejectsWritesServesReads) {
  const auto mem = std::make_shared<MemBackend>();
  mem->put(BlobKind::kTrace, "k", blob_of("published"));
  const auto h =
      make_net_harness(mem, fast_fail_config(), /*writable=*/false);
  const auto got = h->client->get(BlobKind::kTrace, "k");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, blob_of("published"));
  // Writes come back as server errors, not silent drops.
  EXPECT_THROW(h->client->put(BlobKind::kTrace, "w", blob_of("x")),
               std::runtime_error);
  EXPECT_FALSE(mem->contains(BlobKind::kTrace, "w"));
  // remove() maps every failure to kFailed per the StoreBackend contract.
  EXPECT_EQ(h->client->remove(BlobKind::kTrace, "k"),
            StoreBackend::RemoveOutcome::kFailed);
  EXPECT_TRUE(mem->contains(BlobKind::kTrace, "k"));
}

TEST(NetBackend, ServerGoneMidConversationThrowsThenTieredDegrades) {
  const auto h =
      make_net_harness(std::make_shared<MemBackend>(), fast_fail_config());
  h->client->put(BlobKind::kTrace, "k", blob_of("v"));  // pools a socket
  h->stop_server();

  // Bare client: transport failure after all retries IS an exception —
  // NetBackend cannot distinguish "absent" from "unreachable".
  EXPECT_THROW(h->client->get(BlobKind::kTrace, "k"), std::runtime_error);
  EXPECT_EQ(h->client->counters().failures, 1u);

  // Under the tiered seam the same failure is a counted, logged miss.
  const auto l1 = std::make_shared<MemBackend>();
  TieredBackend tiered(l1, h->client);
  EXPECT_NO_THROW({
    EXPECT_FALSE(tiered.get(BlobKind::kTrace, "k").has_value());
  });
  EXPECT_GT(tiered.tier_counters()->l2_errors, 0u);
  // And remove() never throws even with the daemon gone.
  EXPECT_EQ(h->client->remove(BlobKind::kTrace, "k"),
            StoreBackend::RemoveOutcome::kFailed);
}

TEST(NetBackend, ConnectRefusedFailsAfterConfiguredRetries) {
  // Grab an ephemeral port that is then closed again: connecting to it
  // refuses immediately, so the retry loop spins through its budget
  // fast. The resulting counters pin the retry policy: one op, every
  // retry taken, one failure.
  std::uint16_t dead_port = 0;
  {
    net::FrameServerConfig scfg;
    scfg.handler = [](const std::string& p) { return p; };
    net::FrameServer probe(std::move(scfg));
    dead_port = probe.port();
  }
  NetBackendConfig cfg = fast_fail_config();
  cfg.port = dead_port;
  cfg.retries = 2;
  NetBackend nb(cfg);
  EXPECT_THROW(nb.get(BlobKind::kTrace, "k"), std::runtime_error);
  const NetBackend::Counters c = nb.counters();
  EXPECT_EQ(c.ops, 1u);
  EXPECT_EQ(c.retries, 2u);
  EXPECT_EQ(c.failures, 1u);
}

TEST(NetBackend, GarbageResponseThrowsWithoutRetry) {
  // A server that answers every frame with bytes that are not a blob
  // response: protocol corruption, NOT a transport fault — the client
  // must throw immediately instead of retrying garbage.
  net::FrameServerConfig scfg;
  scfg.handler = [](const std::string&) {
    return std::string("these are not the bytes you are looking for");
  };
  net::FrameServer server(std::move(scfg));
  server.start();
  NetBackendConfig cfg = fast_fail_config();
  cfg.port = server.port();
  cfg.retries = 3;
  NetBackend nb(cfg);
  EXPECT_THROW(nb.get(BlobKind::kTrace, "k"), std::runtime_error);
  EXPECT_EQ(nb.counters().retries, 0u);  // corruption is never retried
  server.shutdown();
  server.join();
}

TEST(NetBackend, CorruptedPayloadFailsTheChecksum) {
  // A man-in-the-middle flipping one payload byte: the frame parses, the
  // header validates, but the bulk-bytes checksum must catch the damage.
  const auto mem = std::make_shared<MemBackend>();
  mem->put(BlobKind::kTrace, "k", blob_of("precious payload bytes"));
  net::FrameServerConfig scfg;
  scfg.handler = [mem](const std::string& payload) {
    std::string resp = handle_blob_request(*mem, payload);
    resp[resp.size() / 2] ^= 0x01;  // one bit, mid-payload
    return resp;
  };
  net::FrameServer server(std::move(scfg));
  server.start();
  NetBackendConfig cfg = fast_fail_config();
  cfg.port = server.port();
  NetBackend nb(cfg);
  EXPECT_THROW(nb.get(BlobKind::kTrace, "k"), std::runtime_error);
  EXPECT_EQ(nb.counters().retries, 0u);
  server.shutdown();
  server.join();
}

TEST(NetBackend, ServerRestartRecoversThePooledConnection) {
  // A pooled socket from before a daemon restart is dead on arrival;
  // the client must treat that stale-connection failure as free (no
  // retry budget spent), dial fresh, and succeed.
  const auto h =
      make_net_harness(std::make_shared<MemBackend>(), fast_fail_config());
  h->client->put(BlobKind::kTrace, "k", blob_of("survives"));  // pools
  h->restart_server();

  const auto got = h->client->get(BlobKind::kTrace, "k");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, blob_of("survives"));
  const NetBackend::Counters c = h->client->counters();
  EXPECT_EQ(c.failures, 0u);
  EXPECT_EQ(c.reconnects, 2u);  // the original dial + the recovery dial
}

// ---- Tiered stress: concurrent reads/writes/evictions + failing L2 ----

/// The shared stress body: `kThreads` threads hammer one tiered backend
/// over a small digest set while a toggler flips `flapper` between
/// healthy and failing. Invariants: no call ever throws (degradation,
/// never errors), every successful get returns the digest's canonical
/// bytes, and the counters add up (gets == l1 hits + l1 misses; every
/// l1 miss resolves to an l2 hit, l2 miss or l2 error). TSan runs both
/// instantiations — direct and over-the-wire — to certify the seam.
void run_flapping_l2_stress(TieredBackend& tiered, FailingBackend& flapper,
                            int ops_per_thread) {
  constexpr int kThreads = 8;
  constexpr std::uint64_t kDigests = 5;

  const auto digest_of = [](std::uint64_t d) {
    return "stress-" + std::to_string(d);
  };
  const auto bytes_of = [](std::uint64_t d) {
    return blob_of("payload-" + std::to_string(d));
  };

  std::atomic<bool> stop{false};
  std::thread toggler([&] {
    bool failing = false;
    while (!stop.load()) {
      failing = !failing;
      flapper.fail_get = failing;
      flapper.fail_put = failing;
      flapper.fail_stat = failing;
      std::this_thread::yield();
    }
    flapper.fail_get = flapper.fail_put = flapper.fail_stat = false;
  });

  std::atomic<std::uint64_t> gets{0};
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    pool.emplace_back([&, t] {
      Rng rng(0x71E2EDull + static_cast<std::uint64_t>(t));
      for (int op = 0; op < ops_per_thread; ++op) {
        const std::uint64_t d = rng.below(kDigests);
        const std::string digest = digest_of(d);
        switch (rng.below(5)) {
          case 0:
          case 1:
            tiered.put(BlobKind::kTrace, digest, bytes_of(d));
            break;
          case 2:
          case 3: {
            const auto got = tiered.get(BlobKind::kTrace, digest);
            gets.fetch_add(1, std::memory_order_relaxed);
            if (got) {
              EXPECT_EQ(*got, bytes_of(d));
            }
            break;
          }
          case 4:
            tiered.remove(BlobKind::kTrace, digest);  // L1-only eviction
            break;
        }
        if (op % 16 == 0) (void)tiered.tier_counters();
      }
    });
  for (auto& th : pool) th.join();
  stop = true;
  toggler.join();

  const auto c = tiered.tier_counters();
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->l1_hits + c->l1_misses, gets.load());
  EXPECT_EQ(c->l1_misses, c->l2_hits + c->l2_misses +
                              (c->l2_errors - (c->l1_writes - c->l2_writes)));
  // With the far tier healthy again, every entry written to either tier
  // round-trips with its canonical bytes.
  for (std::uint64_t d = 0; d < kDigests; ++d)
    if (const auto got = tiered.get(BlobKind::kTrace, digest_of(d))) {
      EXPECT_EQ(*got, bytes_of(d));
    }
}

TEST(TieredBackendStress, ConcurrentOpsWithFlappingL2StayConsistent) {
  const auto l1 = std::make_shared<MemBackend>();
  const auto l2 = std::make_shared<FailingBackend>();
  TieredBackend tiered(l1, l2);
  run_flapping_l2_stress(tiered, *l2, 200);
}

TEST(TieredBackendStress, FlappingL2OverTheWireStaysConsistent) {
  // Same invariants with the whole network stack in the loop: the
  // flapping backend sits BEHIND an in-process blob server, so every
  // injected failure travels as a kError response and every healthy op
  // as a framed RPC. The tiered seam must not care which L2 it has.
  const auto flapper = std::make_shared<FailingBackend>();
  const auto h = make_net_harness(flapper, fast_fail_config());
  const auto l1 = std::make_shared<MemBackend>();
  TieredBackend tiered(l1, h->client);
  run_flapping_l2_stress(tiered, *flapper, 60);
  EXPECT_GT(h->client->counters().ops, 0u);
  EXPECT_EQ(h->client->counters().retries, 0u);  // server errors never retry
}

}  // namespace
}  // namespace cms::opt
