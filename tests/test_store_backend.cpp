// Tests for the StoreBackend seam (opt/store_backend.hpp): the storage
// contract every implementation must satisfy (get/put/stat/remove/list
// with the vanished-vs-corrupt failure model), DirBackend's filesystem
// specifics (atomic publish, failed-unlink reporting, deterministic
// stalest-first listing with digest tie-breaks), MemBackend parity, and
// the TieredBackend composition: read-through with promote-on-hit,
// write-through, L1-only remove/list, and the degradation guarantee —
// every L2 failure is counted and logged, never surfaced as an error.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "opt/store_backend.hpp"

namespace cms::opt {
namespace {

namespace fs = std::filesystem;

/// Fresh directory under the system temp dir, removed on destruction.
struct TempDir {
  fs::path path;
  TempDir() {
    static int counter = 0;
    path = fs::temp_directory_path() /
           ("cms-backend-test-" + std::to_string(::getpid()) + "-" +
            std::to_string(counter++));
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string file(const std::string& name) const {
    return (path / name).string();
  }
};

StoreBackend::Blob blob_of(const std::string& text) {
  return StoreBackend::Blob(text.begin(), text.end());
}

/// Wraps a MemBackend and throws on demand, per operation — the shape of
/// a far tier whose network/filesystem is failing. Flags are atomic so
/// the tiered stress test may flip them mid-run.
class FailingBackend final : public StoreBackend {
 public:
  std::atomic<bool> fail_get{false};
  std::atomic<bool> fail_put{false};
  std::atomic<bool> fail_stat{false};

  std::string describe() const override { return "failing"; }
  std::optional<Blob> get(BlobKind kind, const std::string& digest) override {
    if (fail_get.load()) throw std::runtime_error("injected get failure");
    return inner_.get(kind, digest);
  }
  void put(BlobKind kind, const std::string& digest,
           const Blob& bytes) override {
    if (fail_put.load()) throw std::runtime_error("injected put failure");
    inner_.put(kind, digest, bytes);
  }
  std::optional<std::uint64_t> stat(BlobKind kind,
                                    const std::string& digest) override {
    if (fail_stat.load()) throw std::runtime_error("injected stat failure");
    return inner_.stat(kind, digest);
  }
  RemoveOutcome remove(BlobKind kind, const std::string& digest) override {
    return inner_.remove(kind, digest);
  }
  std::vector<ListedBlob> list(BlobKind kind) override {
    return inner_.list(kind);
  }

 private:
  MemBackend inner_;
};

// ---- The contract every backend satisfies (Dir and Mem) ----

struct BackendFactory {
  const char* name;
  std::function<std::shared_ptr<StoreBackend>(TempDir&)> make;
};

std::vector<BackendFactory> contract_backends() {
  return {
      {"dir",
       [](TempDir& tmp) {
         return std::make_shared<DirBackend>(tmp.file("store"));
       }},
      {"mem", [](TempDir&) { return std::make_shared<MemBackend>(); }},
  };
}

TEST(StoreBackendContract, PutGetStatRemoveRoundTrip) {
  for (const BackendFactory& f : contract_backends()) {
    SCOPED_TRACE(f.name);
    TempDir tmp;
    const auto b = f.make(tmp);
    EXPECT_FALSE(b->get(BlobKind::kTrace, "k").has_value());
    EXPECT_FALSE(b->stat(BlobKind::kTrace, "k").has_value());
    EXPECT_FALSE(b->contains(BlobKind::kTrace, "k"));

    const StoreBackend::Blob bytes = blob_of("capture payload");
    b->put(BlobKind::kTrace, "k", bytes);
    const auto got = b->get(BlobKind::kTrace, "k");
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, bytes);
    const auto sz = b->stat(BlobKind::kTrace, "k");
    ASSERT_TRUE(sz.has_value());
    EXPECT_EQ(*sz, bytes.size());
    EXPECT_TRUE(b->contains(BlobKind::kTrace, "k"));

    EXPECT_EQ(b->remove(BlobKind::kTrace, "k"),
              StoreBackend::RemoveOutcome::kRemoved);
    EXPECT_EQ(b->remove(BlobKind::kTrace, "k"),
              StoreBackend::RemoveOutcome::kVanished);
    EXPECT_FALSE(b->get(BlobKind::kTrace, "k").has_value());
  }
}

TEST(StoreBackendContract, KindsAreIndependentNamespaces) {
  for (const BackendFactory& f : contract_backends()) {
    SCOPED_TRACE(f.name);
    TempDir tmp;
    const auto b = f.make(tmp);
    b->put(BlobKind::kTrace, "k", blob_of("trace"));
    b->put(BlobKind::kPlan, "k", blob_of("plan!"));
    EXPECT_EQ(*b->get(BlobKind::kTrace, "k"), blob_of("trace"));
    EXPECT_EQ(*b->get(BlobKind::kPlan, "k"), blob_of("plan!"));
    // Removing one kind's entry leaves the other kind's alone.
    EXPECT_EQ(b->remove(BlobKind::kTrace, "k"),
              StoreBackend::RemoveOutcome::kRemoved);
    EXPECT_TRUE(b->contains(BlobKind::kPlan, "k"));
    ASSERT_EQ(b->list(BlobKind::kPlan).size(), 1u);
    EXPECT_TRUE(b->list(BlobKind::kTrace).empty());
  }
}

TEST(StoreBackendContract, ListReportsDigestAndSizeInWriteOrder) {
  for (const BackendFactory& f : contract_backends()) {
    SCOPED_TRACE(f.name);
    TempDir tmp;
    const auto b = f.make(tmp);
    b->put(BlobKind::kTrace, "bb", blob_of("22"));
    b->put(BlobKind::kTrace, "aa", blob_of("4444"));
    const auto rows = b->list(BlobKind::kTrace);
    ASSERT_EQ(rows.size(), 2u);
    // Write order (mtime/seq) wins over lexical order when distinct.
    // DirBackend mtimes may collide within the same second, where the
    // digest tie-break makes lexical order correct too — accept both
    // orders but require digest/size integrity.
    std::uint64_t aa = 0, bb = 0;
    for (const auto& r : rows) {
      if (r.digest == "aa") aa = r.bytes;
      if (r.digest == "bb") bb = r.bytes;
    }
    EXPECT_EQ(aa, 4u);
    EXPECT_EQ(bb, 2u);
  }
}

TEST(StoreBackendContract, RewritingAKeyReplacesItsBytes) {
  for (const BackendFactory& f : contract_backends()) {
    SCOPED_TRACE(f.name);
    TempDir tmp;
    const auto b = f.make(tmp);
    b->put(BlobKind::kTrace, "k", blob_of("old"));
    b->put(BlobKind::kTrace, "k", blob_of("newer"));
    EXPECT_EQ(*b->get(BlobKind::kTrace, "k"), blob_of("newer"));
    EXPECT_EQ(b->list(BlobKind::kTrace).size(), 1u);
  }
}

// ---- DirBackend filesystem specifics ----

TEST(DirBackend, EmptyDirThrows) {
  EXPECT_THROW(DirBackend(""), std::runtime_error);
}

TEST(DirBackend, CreateFalseToleratesMissingDirectory) {
  TempDir tmp;
  DirBackend b(tmp.file("never-created"), /*create=*/false);
  EXPECT_FALSE(fs::exists(tmp.file("never-created")));
  EXPECT_FALSE(b.get(BlobKind::kTrace, "k").has_value());
  EXPECT_FALSE(b.stat(BlobKind::kTrace, "k").has_value());
  EXPECT_TRUE(b.list(BlobKind::kTrace).empty());
  EXPECT_EQ(b.remove(BlobKind::kTrace, "k"),
            StoreBackend::RemoveOutcome::kVanished);
}

TEST(DirBackend, UsesHistoricalFlatLayout) {
  TempDir tmp;
  DirBackend b(tmp.file("store"));
  b.put(BlobKind::kTrace, "abc123", blob_of("t"));
  b.put(BlobKind::kPlan, "abc123", blob_of("p"));
  EXPECT_TRUE(fs::exists(tmp.file("store") + "/abc123.cmstrace"));
  EXPECT_TRUE(fs::exists(tmp.file("store") + "/abc123.cmsplan"));
  EXPECT_EQ(b.path_of(BlobKind::kTrace, "abc123"),
            (fs::path(tmp.file("store")) / "abc123.cmstrace").string());
}

TEST(DirBackend, NoTempFilesSurviveAPut) {
  TempDir tmp;
  DirBackend b(tmp.file("store"));
  b.put(BlobKind::kTrace, "k", blob_of("payload"));
  std::size_t files = 0;
  for (const auto& e : fs::directory_iterator(tmp.file("store"))) {
    (void)e;
    ++files;
  }
  EXPECT_EQ(files, 1u);
}

TEST(DirBackend, StatOfUnstatableEntryReportsUnknownSize) {
  TempDir tmp;
  DirBackend b(tmp.file("store"));
  // A directory wearing an entry's name: present, but file_size fails.
  fs::create_directory(b.path_of(BlobKind::kTrace, "ghost"));
  const auto sz = b.stat(BlobKind::kTrace, "ghost");
  ASSERT_TRUE(sz.has_value());
  EXPECT_EQ(*sz, 0u);
}

TEST(DirBackend, RemoveOfStuckEntryReportsFailed) {
  TempDir tmp;
  DirBackend b(tmp.file("store"));
  // A NON-EMPTY directory at the entry's path: unlink fails (ENOTEMPTY),
  // and the backend must say so rather than claim kRemoved/kVanished.
  fs::create_directories(fs::path(b.path_of(BlobKind::kTrace, "stuck")) /
                         "sub");
  EXPECT_EQ(b.remove(BlobKind::kTrace, "stuck"),
            StoreBackend::RemoveOutcome::kFailed);
}

TEST(DirBackend, ListBreaksMtimeTiesByDigest) {
  // The reopen-nondeterminism regression (satellite of this PR): two
  // entries written within one filesystem-timestamp quantum used to be
  // indexed in directory-iteration order, so which one a budgeted reopen
  // evicted first varied across runs. Ties now break by digest.
  TempDir tmp;
  DirBackend b(tmp.file("store"));
  // Deliberately non-lexical write order.
  b.put(BlobKind::kTrace, "cc", blob_of("3"));
  b.put(BlobKind::kTrace, "aa", blob_of("1"));
  b.put(BlobKind::kTrace, "bb", blob_of("2"));
  // Force identical mtimes regardless of filesystem timestamp precision.
  const auto stamp =
      fs::last_write_time(b.path_of(BlobKind::kTrace, "aa"));
  for (const char* d : {"aa", "bb", "cc"})
    fs::last_write_time(b.path_of(BlobKind::kTrace, d), stamp);
  const auto rows = b.list(BlobKind::kTrace);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].digest, "aa");
  EXPECT_EQ(rows[1].digest, "bb");
  EXPECT_EQ(rows[2].digest, "cc");
}

TEST(DirBackend, ListOrdersStalestFirstAcrossDistinctMtimes) {
  TempDir tmp;
  DirBackend b(tmp.file("store"));
  b.put(BlobKind::kTrace, "newer", blob_of("n"));
  b.put(BlobKind::kTrace, "older", blob_of("o"));
  // Make "older" decisively older than "newer" without sleeping.
  const std::string older = b.path_of(BlobKind::kTrace, "older");
  fs::last_write_time(older,
                      fs::last_write_time(older) - std::chrono::hours(1));
  const auto rows = b.list(BlobKind::kTrace);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].digest, "older");
  EXPECT_EQ(rows[1].digest, "newer");
}

// ---- MemBackend specifics ----

TEST(MemBackend, ListOrdersByInsertionIncludingRewrites) {
  MemBackend b;
  b.put(BlobKind::kTrace, "x", blob_of("1"));
  b.put(BlobKind::kTrace, "y", blob_of("2"));
  b.put(BlobKind::kTrace, "x", blob_of("3"));  // rewrite freshens x
  const auto rows = b.list(BlobKind::kTrace);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].digest, "y");
  EXPECT_EQ(rows[1].digest, "x");
}

TEST(MemBackend, SharedInstanceModelsReopen) {
  // The documented pattern: one MemBackend shared by several store
  // instances stands in for a directory shared by several processes.
  const auto b = std::make_shared<MemBackend>();
  b->put(BlobKind::kTrace, "k", blob_of("payload"));
  const std::shared_ptr<StoreBackend> reopened = b;
  EXPECT_TRUE(reopened->contains(BlobKind::kTrace, "k"));
  EXPECT_EQ(reopened->list(BlobKind::kTrace).size(), 1u);
}

// ---- TieredBackend composition ----

TEST(TieredBackend, NullTierIsRejected) {
  const auto mem = std::make_shared<MemBackend>();
  EXPECT_THROW(TieredBackend(nullptr, mem), std::invalid_argument);
  EXPECT_THROW(TieredBackend(mem, nullptr), std::invalid_argument);
}

TEST(TieredBackend, ReadThroughPromotesL2HitsIntoL1) {
  const auto l1 = std::make_shared<MemBackend>();
  const auto l2 = std::make_shared<MemBackend>();
  TieredBackend tiered(l1, l2);
  l2->put(BlobKind::kTrace, "k", blob_of("far bytes"));

  const auto got = tiered.get(BlobKind::kTrace, "k");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, blob_of("far bytes"));
  EXPECT_TRUE(l1->contains(BlobKind::kTrace, "k"));  // promoted

  const auto again = tiered.get(BlobKind::kTrace, "k");  // now near
  ASSERT_TRUE(again.has_value());
  const auto c = tiered.tier_counters();
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->l1_misses, 1u);
  EXPECT_EQ(c->l2_hits, 1u);
  EXPECT_EQ(c->promotions, 1u);
  EXPECT_EQ(c->l1_hits, 1u);
  EXPECT_EQ(c->l2_errors, 0u);
}

TEST(TieredBackend, PromoteCanBeDisabled) {
  const auto l1 = std::make_shared<MemBackend>();
  const auto l2 = std::make_shared<MemBackend>();
  TieredBackend::Config cfg;
  cfg.l1 = l1;
  cfg.l2 = l2;
  cfg.promote = false;
  TieredBackend tiered(std::move(cfg));
  l2->put(BlobKind::kTrace, "k", blob_of("far"));
  EXPECT_TRUE(tiered.get(BlobKind::kTrace, "k").has_value());
  EXPECT_TRUE(tiered.get(BlobKind::kTrace, "k").has_value());
  EXPECT_FALSE(l1->contains(BlobKind::kTrace, "k"));
  const auto c = tiered.tier_counters();
  EXPECT_EQ(c->l2_hits, 2u);  // every read pays the far trip
  EXPECT_EQ(c->promotions, 0u);
}

TEST(TieredBackend, PutWritesThroughToBothTiers) {
  const auto l1 = std::make_shared<MemBackend>();
  const auto l2 = std::make_shared<MemBackend>();
  TieredBackend tiered(l1, l2);
  tiered.put(BlobKind::kPlan, "k", blob_of("plan"));
  EXPECT_TRUE(l1->contains(BlobKind::kPlan, "k"));
  EXPECT_TRUE(l2->contains(BlobKind::kPlan, "k"));
  const auto c = tiered.tier_counters();
  EXPECT_EQ(c->l1_writes, 1u);
  EXPECT_EQ(c->l2_writes, 1u);
}

TEST(TieredBackend, ReadOnlyL2IsNeverWritten) {
  const auto l1 = std::make_shared<MemBackend>();
  const auto l2 = std::make_shared<MemBackend>();
  TieredBackend tiered(l1, l2, /*l2_writable=*/false);
  tiered.put(BlobKind::kTrace, "k", blob_of("local only"));
  EXPECT_TRUE(l1->contains(BlobKind::kTrace, "k"));
  EXPECT_FALSE(l2->contains(BlobKind::kTrace, "k"));
  EXPECT_EQ(tiered.tier_counters()->l2_writes, 0u);
}

TEST(TieredBackend, RemoveAndListTouchOnlyL1) {
  // A local budget eviction must never delete the fleet-shared copy —
  // and the reopen index seeds only the near tier.
  const auto l1 = std::make_shared<MemBackend>();
  const auto l2 = std::make_shared<MemBackend>();
  TieredBackend tiered(l1, l2);
  tiered.put(BlobKind::kTrace, "k", blob_of("v"));
  EXPECT_EQ(tiered.remove(BlobKind::kTrace, "k"),
            StoreBackend::RemoveOutcome::kRemoved);
  EXPECT_FALSE(l1->contains(BlobKind::kTrace, "k"));
  EXPECT_TRUE(l2->contains(BlobKind::kTrace, "k"));
  EXPECT_TRUE(tiered.list(BlobKind::kTrace).empty());
  // The evicted entry is still one read-through away.
  EXPECT_TRUE(tiered.get(BlobKind::kTrace, "k").has_value());
}

TEST(TieredBackend, StatFallsBackToL2) {
  const auto l1 = std::make_shared<MemBackend>();
  const auto l2 = std::make_shared<MemBackend>();
  TieredBackend tiered(l1, l2);
  l2->put(BlobKind::kTrace, "k", blob_of("12345"));
  const auto sz = tiered.stat(BlobKind::kTrace, "k");
  ASSERT_TRUE(sz.has_value());
  EXPECT_EQ(*sz, 5u);
  EXPECT_FALSE(tiered.stat(BlobKind::kTrace, "absent").has_value());
}

// ---- TieredBackend degradation: L2 failures are never errors ----

TEST(TieredBackend, L2GetFailureDegradesToAMiss) {
  const auto l1 = std::make_shared<MemBackend>();
  const auto l2 = std::make_shared<FailingBackend>();
  TieredBackend tiered(l1, l2);
  l2->put(BlobKind::kTrace, "k", blob_of("unreachable"));
  l2->fail_get = true;
  EXPECT_NO_THROW({
    EXPECT_FALSE(tiered.get(BlobKind::kTrace, "k").has_value());
  });
  EXPECT_EQ(tiered.tier_counters()->l2_errors, 1u);
  // L1 entries keep being served while the far tier is down.
  tiered.put(BlobKind::kTrace, "local", blob_of("near"));
  EXPECT_TRUE(tiered.get(BlobKind::kTrace, "local").has_value());
}

TEST(TieredBackend, L2PutFailureLeavesEntryL1Only) {
  const auto l1 = std::make_shared<MemBackend>();
  const auto l2 = std::make_shared<FailingBackend>();
  TieredBackend tiered(l1, l2);
  l2->fail_put = true;
  EXPECT_NO_THROW(tiered.put(BlobKind::kTrace, "k", blob_of("v")));
  EXPECT_TRUE(l1->contains(BlobKind::kTrace, "k"));
  EXPECT_FALSE(l2->contains(BlobKind::kTrace, "k"));
  const auto c = tiered.tier_counters();
  EXPECT_EQ(c->l1_writes, 1u);
  EXPECT_EQ(c->l2_writes, 0u);
  EXPECT_EQ(c->l2_errors, 1u);
}

TEST(TieredBackend, L2StatFailureDegradesToAbsent) {
  const auto l1 = std::make_shared<MemBackend>();
  const auto l2 = std::make_shared<FailingBackend>();
  TieredBackend tiered(l1, l2);
  l2->put(BlobKind::kTrace, "k", blob_of("v"));
  l2->fail_stat = true;
  EXPECT_NO_THROW({
    EXPECT_FALSE(tiered.stat(BlobKind::kTrace, "k").has_value());
  });
  EXPECT_EQ(tiered.tier_counters()->l2_errors, 1u);
}

TEST(TieredBackend, L1FailurePropagatesFromPut) {
  // The near tier IS the correctness boundary: its put failures must
  // surface, not degrade.
  const auto l1 = std::make_shared<FailingBackend>();
  const auto l2 = std::make_shared<MemBackend>();
  TieredBackend tiered(l1, l2);
  l1->fail_put = true;
  EXPECT_THROW(tiered.put(BlobKind::kTrace, "k", blob_of("v")),
               std::runtime_error);
}

TEST(TieredBackend, FailedPromotionIsStillAHit) {
  const auto l1 = std::make_shared<FailingBackend>();
  const auto l2 = std::make_shared<MemBackend>();
  TieredBackend tiered(l1, l2);
  l2->put(BlobKind::kTrace, "k", blob_of("far"));
  l1->fail_put = true;  // promotion will fail; the read must not
  const auto got = tiered.get(BlobKind::kTrace, "k");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, blob_of("far"));
  const auto c = tiered.tier_counters();
  EXPECT_EQ(c->l2_hits, 1u);
  EXPECT_EQ(c->promotions, 0u);  // never counted as promoted
}

TEST(TieredBackend, DescribeNamesBothTiers) {
  TempDir tmp;
  const auto l1 = std::make_shared<DirBackend>(tmp.file("near"));
  const auto l2 = std::make_shared<MemBackend>();
  TieredBackend tiered(l1, l2);
  EXPECT_EQ(tiered.describe(), "tiered(dir:" + tmp.file("near") + ", mem)");
}

// ---- Tiered stress: concurrent reads/writes/evictions + failing L2 ----

TEST(TieredBackendStress, ConcurrentOpsWithFlappingL2StayConsistent) {
  // 8 threads hammer one tiered backend over a small digest set while a
  // toggler flips the far tier between healthy and failing. Invariants:
  // no call ever throws (degradation, never errors), every successful
  // get returns the digest's canonical bytes, and the counters add up
  // (gets == l1 hits + l1 misses; every l1 miss resolves to an l2 hit,
  // l2 miss or l2 error). TSan runs this to certify the seam.
  constexpr int kThreads = 8;
  constexpr int kOps = 200;
  constexpr std::uint64_t kDigests = 5;
  const auto l1 = std::make_shared<MemBackend>();
  const auto l2 = std::make_shared<FailingBackend>();
  TieredBackend tiered(l1, l2);

  const auto digest_of = [](std::uint64_t d) {
    return "stress-" + std::to_string(d);
  };
  const auto bytes_of = [](std::uint64_t d) {
    return blob_of("payload-" + std::to_string(d));
  };

  std::atomic<bool> stop{false};
  std::thread toggler([&] {
    bool failing = false;
    while (!stop.load()) {
      failing = !failing;
      l2->fail_get = failing;
      l2->fail_put = failing;
      l2->fail_stat = failing;
      std::this_thread::yield();
    }
    l2->fail_get = l2->fail_put = l2->fail_stat = false;
  });

  std::atomic<std::uint64_t> gets{0};
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    pool.emplace_back([&, t] {
      Rng rng(0x71E2EDull + static_cast<std::uint64_t>(t));
      for (int op = 0; op < kOps; ++op) {
        const std::uint64_t d = rng.below(kDigests);
        const std::string digest = digest_of(d);
        switch (rng.below(5)) {
          case 0:
          case 1:
            tiered.put(BlobKind::kTrace, digest, bytes_of(d));
            break;
          case 2:
          case 3: {
            const auto got = tiered.get(BlobKind::kTrace, digest);
            gets.fetch_add(1, std::memory_order_relaxed);
            if (got) {
              EXPECT_EQ(*got, bytes_of(d));
            }
            break;
          }
          case 4:
            tiered.remove(BlobKind::kTrace, digest);  // L1-only eviction
            break;
        }
        if (op % 16 == 0) (void)tiered.tier_counters();
      }
    });
  for (auto& th : pool) th.join();
  stop = true;
  toggler.join();

  const auto c = tiered.tier_counters();
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->l1_hits + c->l1_misses, gets.load());
  EXPECT_EQ(c->l1_misses, c->l2_hits + c->l2_misses +
                              (c->l2_errors - (c->l1_writes - c->l2_writes)));
  // With the far tier healthy again, every entry written to either tier
  // round-trips with its canonical bytes.
  for (std::uint64_t d = 0; d < kDigests; ++d)
    if (const auto got = tiered.get(BlobKind::kTrace, digest_of(d))) {
      EXPECT_EQ(*got, bytes_of(d));
    }
}

}  // namespace
}  // namespace cms::opt
