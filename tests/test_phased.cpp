// Phased (streaming) workload tests: engine phase gating and schedule
// validation, make_phased_app assembly rules, per-phase campaign
// determinism across worker counts, per-phase planning through the
// planning service (phases sharing mix+content hit the plan cache), and
// the plan-following controller (map_phase_plan + PhasePlanFollower)
// against the proven PartitionPlan::apply path.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "opt/dynamic.hpp"
#include "opt/plan_schedule.hpp"
#include "sim/engine.hpp"
#include "svc/plan_protocol.hpp"
#include "svc/planning_service.hpp"

namespace cms {
namespace {

std::vector<apps::AppPhase> tiny_stream_phases() {
  apps::AppConfig jpeg = apps::AppConfig::tiny();
  jpeg.jpeg_pictures = 1;
  jpeg.canny_frames = 1;
  apps::AppConfig m2v = apps::AppConfig::tiny();
  m2v.m2v_frames = 2;
  return {{"in", apps::AppMix::kJpegCanny, jpeg},
          {"steady", apps::AppMix::kMpeg2, m2v},
          {"out", apps::AppMix::kJpegCanny, jpeg}};
}

/// Minimal combined-run harness (the bench's pattern): phase schedule
/// installed, optional pre-run layout/hook decided by the caller.
struct Harness {
  apps::Application app;
  std::unique_ptr<sim::Platform> platform;
  std::unique_ptr<sim::Os> os;
  std::unique_ptr<sim::TimingEngine> engine;

  explicit Harness(const core::ScenarioSpec& spec, bool phase_schedule = true)
      : app(spec.factory()) {
    sim::PlatformConfig pc = spec.experiment.platform;
    pc.rt_data = app.rt_data;
    pc.rt_bss = app.rt_bss;
    platform = std::make_unique<sim::Platform>(pc);
    for (const auto& b : app.net->buffers())
      platform->hierarchy().l2().interval_table().add(b.base, b.footprint,
                                                      b.id);
    os = std::make_unique<sim::Os>(spec.experiment.policy, pc.hier.num_procs);
    engine = std::make_unique<sim::TimingEngine>(*platform, *os,
                                                 app.net->tasks());
    engine->set_buffer_names(app.net->buffer_names());
    if (phase_schedule && !app.phases.empty()) {
      std::vector<std::vector<TaskId>> phases;
      for (const auto& u : app.phases) phases.push_back(u->tasks);
      engine->set_phase_schedule(phases);
    }
  }
};

std::map<std::string, mem::ClientId> client_map(const apps::Application& app) {
  std::map<std::string, mem::ClientId> clients;
  for (const sim::Task* t : app.net->tasks())
    clients[t->name()] = mem::ClientId::task(t->id());
  for (const auto& b : app.net->buffers())
    clients[b.name] = mem::ClientId::buffer(b.id);
  return clients;
}

TEST(PhasedApp, CombinedNetworkPrefixesPhasesAndSharesSegments) {
  const apps::Application app = apps::make_phased_app(tiny_stream_phases());
  ASSERT_EQ(app.phases.size(), 3u);
  EXPECT_EQ(app.phases[0]->prefix, "p0/");
  EXPECT_EQ(app.phases[1]->prefix, "p1/");
  EXPECT_EQ(app.phases[2]->prefix, "p2/");
  EXPECT_EQ(app.phases[0]->tasks.size(), 15u);  // jpeg-canny
  EXPECT_EQ(app.phases[1]->tasks.size(), 13u);  // mpeg2
  EXPECT_EQ(app.net->processes().size(), 15u + 13u + 15u);

  // Every task name carries its phase prefix; the static segments stay
  // shared (bare names, one copy).
  for (const auto& u : app.phases)
    for (const TaskId id : u->tasks) {
      const sim::Task* t = app.net->tasks()[static_cast<std::size_t>(id)];
      EXPECT_EQ(t->name().rfind(u->prefix, 0), 0u) << t->name();
    }
  EXPECT_GT(app.appl_data.size, 0u);
  int segments = 0;
  for (const auto& b : app.net->buffers())
    if (b.kind == kpn::BufferKind::kSegment) ++segments;
  EXPECT_EQ(segments, 4);  // appl/rt data+bss, shared — not per phase
}

TEST(PhasedApp, RejectsBadSchedules) {
  EXPECT_THROW(apps::make_phased_app({}), std::invalid_argument);

  auto phases = tiny_stream_phases();
  phases[1].mix = apps::AppMix::kNone;
  try {
    apps::make_phased_app(phases);
    FAIL() << "empty mix accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("phase 1"), std::string::npos)
        << e.what();
  }

  // The codec-table block is shared, so JPEG phases must agree on
  // quality — and MPEG2's fixed quality-75 tables pin it for mixed
  // schedules.
  auto conflict = tiny_stream_phases();
  conflict[2].content.jpeg_quality = 50;
  EXPECT_THROW(apps::make_phased_app(conflict), std::invalid_argument);
}

TEST(PhasedEngine, GatesPhasesAndFiresHooksInOrder) {
  const core::ScenarioSpec spec = core::scenarios().get("stream-tiny");
  Harness h(spec);
  std::vector<std::size_t> hooks;
  h.engine->set_phase_hook(
      [&hooks](std::size_t k, Cycle, mem::MemoryHierarchy&) {
        hooks.push_back(k);
      });
  const sim::SimResults r = h.engine->run();
  EXPECT_FALSE(r.deadlocked);
  EXPECT_TRUE(h.app.verify());

  // Phase 0 never fires a hook; 1 and 2 fire exactly once, in order.
  EXPECT_EQ(hooks, (std::vector<std::size_t>{1, 2}));
  EXPECT_EQ(h.engine->active_phase(), 2u);
  const auto& entry = h.engine->phase_entry_cycles();
  ASSERT_EQ(entry.size(), 3u);
  EXPECT_EQ(entry[0], 0u);
  EXPECT_LT(entry[1], entry[2]);  // strictly later activation
  EXPECT_GT(entry[1], 0u);
}

TEST(PhasedEngine, RunsAreDeterministic) {
  const core::ScenarioSpec spec = core::scenarios().get("stream-tiny");
  sim::SimResults first;
  for (int i = 0; i < 2; ++i) {
    Harness h(spec);
    const sim::SimResults r = h.engine->run();
    EXPECT_TRUE(h.app.verify());
    if (i == 0) {
      first = r;
    } else {
      EXPECT_EQ(r.l2_misses, first.l2_misses);
      EXPECT_EQ(r.l2_accesses, first.l2_accesses);
      EXPECT_EQ(r.makespan, first.makespan);
    }
  }
}

TEST(PhasedEngine, ScheduleValidationNamesTheOffendingTask) {
  const core::ScenarioSpec spec = core::scenarios().get("stream-tiny");
  Harness h(spec, /*phase_schedule=*/false);
  std::vector<std::vector<TaskId>> phases;
  for (const auto& u : h.app.phases) phases.push_back(u->tasks);

  auto twice = phases;
  twice[1].push_back(phases[0][0]);
  try {
    h.engine->set_phase_schedule(twice);
    FAIL() << "duplicate task accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("twice"), std::string::npos)
        << e.what();
  }

  auto missing = phases;
  missing[2].pop_back();
  try {
    h.engine->set_phase_schedule(missing);
    FAIL() << "incomplete schedule accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("misses task"), std::string::npos)
        << e.what();
  }

  auto unknown = phases;
  unknown[0].push_back(static_cast<TaskId>(999));
  EXPECT_THROW(h.engine->set_phase_schedule(unknown), std::invalid_argument);
}

TEST(PhasedCampaign, PerPhaseProfilesAreWorkerCountInvariant) {
  // The streaming scenario's planning campaign is the per-phase isolation
  // sweep; like every campaign it must be bit-identical at any worker
  // count (ROADMAP determinism contract).
  const core::ScenarioSpec spec = core::scenarios().get("stream-tiny");
  ASSERT_FALSE(spec.phases.empty());
  const core::ScenarioPhase& ph = spec.phases[1];  // mpeg2 steady-state
  opt::MissProfile reference;
  for (const unsigned jobs : {1u, 2u, 8u}) {
    core::ExperimentConfig cfg = spec.experiment;
    cfg.trace_key = ph.trace_key;
    cfg.jobs = jobs;
    const core::Experiment exp(ph.factory, cfg);
    const opt::MissProfile prof = exp.profile();
    if (jobs == 1u)
      reference = prof;
    else
      EXPECT_TRUE(prof.identical(reference)) << "jobs=" << jobs;
  }
}

TEST(PhasedPlanning, RepeatedPhaseHitsThePlanCache) {
  // stream-tiny's phases 0 and 2 run the same mix on the same content,
  // so they share a trace_key — the service plans the mix once and phase
  // 2 is a pure plan-cache hit with a bit-identical answer.
  const core::ScenarioSpec spec = core::scenarios().get("stream-tiny");
  ASSERT_EQ(spec.phases.size(), 3u);
  EXPECT_EQ(spec.phases[0].trace_key, spec.phases[2].trace_key);
  EXPECT_NE(spec.phases[0].trace_key, spec.phases[1].trace_key);

  svc::PlanningServiceConfig cfg;
  cfg.store = std::make_shared<opt::TraceStore>(
      std::make_shared<opt::MemBackend>(), /*read_only=*/false);
  cfg.plan_cache = std::make_shared<opt::PlanCache>(opt::PlanCache::Config{});
  svc::PlanningService service(std::move(cfg));

  svc::PlanRequest req;
  req.scenario = "stream-tiny";
  req.phases = true;
  const svc::PlanResponse resp = service.plan(req);
  ASSERT_TRUE(resp.ok) << resp.error;
  ASSERT_EQ(resp.phases.size(), 3u);
  for (const svc::PlanResponse& ph : resp.phases) {
    EXPECT_TRUE(ph.ok) << ph.phase << ": " << ph.error;
    EXPECT_TRUE(ph.assignment.feasible) << ph.phase;
    EXPECT_FALSE(ph.phase.empty());
  }
  EXPECT_EQ(resp.phases[0].phase, "jpeg-in");
  EXPECT_EQ(resp.phases[1].phase, "mpeg2-steady");

  // Phase 2 = phase 0, bit for bit; only one capture+solve per distinct
  // mix, the repeat came from the memo.
  EXPECT_TRUE(
      resp.phases[2].assignment.identical(resp.phases[0].assignment));
  EXPECT_EQ(resp.phases[2].plan_source, svc::PlanSource::kCache);
  const svc::ServiceStats stats = service.service_stats();
  EXPECT_EQ(stats.plan_cache_hits, 1u);
  EXPECT_EQ(stats.captured, 2u);  // jpeg-canny mix + mpeg2 mix

  // A classic fixed-mix scenario has no phase schedule to plan.
  svc::PlanRequest classic;
  classic.scenario = "mpeg2-tiny";
  classic.phases = true;
  const svc::PlanResponse err = service.plan(classic);
  EXPECT_FALSE(err.ok);
  EXPECT_NE(err.error.find("phase schedule"), std::string::npos) << err.error;
}

TEST(PlanFollower, MatchesHandInstalledLayoutBitForBit) {
  // A one-phase schedule through map_phase_plan + PhasePlanFollower must
  // reproduce the proven PartitionPlan::apply path exactly: same layout
  // in the table, same simulation, same miss counts.
  const core::ScenarioSpec spec = core::scenarios().get("mpeg2-tiny");
  core::Experiment exp(spec.factory, spec.experiment);
  const opt::PartitionPlan plan = exp.plan(exp.profile());
  ASSERT_TRUE(plan.feasible);

  sim::SimResults by_hand, by_follower;
  for (const bool use_follower : {false, true}) {
    Harness h(spec);
    mem::PartitionedCache& l2 = h.platform->hierarchy().l2();
    if (use_follower) {
      opt::PlanSchedule schedule;
      schedule.phases.push_back(
          opt::map_phase_plan(plan, 0, "", client_map(h.app)));
      opt::PhasePlanFollower follower(std::move(schedule));
      follower.install(0, h.platform->hierarchy());
      by_follower = h.engine->run();
      EXPECT_EQ(follower.moves(), 0u);
      EXPECT_EQ(follower.flushed_sets(), 0u);  // nothing relinquished yet
    } else {
      plan.apply(l2);
      by_hand = h.engine->run();
    }
    EXPECT_TRUE(h.app.verify());
  }
  EXPECT_EQ(by_follower.l2_misses, by_hand.l2_misses);
  EXPECT_EQ(by_follower.l2_accesses, by_hand.l2_accesses);
  EXPECT_EQ(by_follower.makespan, by_hand.makespan);
}

TEST(PlanFollower, InstallsEachPhaseOnceAndAccountsFlushes) {
  const core::ScenarioSpec spec = core::scenarios().get("stream-tiny");
  Harness h(spec);

  std::map<std::string, opt::PartitionPlan> plans;
  for (const core::ScenarioPhase& ph : spec.phases) {
    if (plans.count(ph.trace_key) != 0) continue;
    core::ExperimentConfig cfg = spec.experiment;
    cfg.trace_key = ph.trace_key;
    const core::Experiment exp(ph.factory, cfg);
    plans.emplace(ph.trace_key, exp.plan(exp.profile()));
  }
  const auto clients = client_map(h.app);
  opt::PlanSchedule schedule;
  for (std::size_t k = 0; k < spec.phases.size(); ++k)
    schedule.phases.push_back(
        opt::map_phase_plan(plans.at(spec.phases[k].trace_key), k,
                            h.app.phases[k]->prefix, clients));

  opt::PhasePlanFollower follower(std::move(schedule));
  follower.install(0, h.platform->hierarchy());
  h.engine->set_phase_hook(
      [&follower](std::size_t k, Cycle, mem::MemoryHierarchy& hier) {
        follower.install(k, hier);
      });
  const sim::SimResults r = h.engine->run();
  EXPECT_FALSE(r.deadlocked);
  EXPECT_TRUE(h.app.verify());
  EXPECT_EQ(follower.moves(), 2u);  // two phase boundaries repartitioned
  EXPECT_GT(follower.flushed_sets(), 0u);
}

TEST(PlanFollower, MapPhasePlanRejectsUnknownClients) {
  const core::ScenarioSpec spec = core::scenarios().get("stream-tiny");
  const core::ScenarioPhase& ph = spec.phases[0];
  core::ExperimentConfig cfg = spec.experiment;
  cfg.trace_key = ph.trace_key;
  const core::Experiment exp(ph.factory, cfg);
  const opt::PartitionPlan plan = exp.plan(exp.profile());

  // A wrong prefix maps every per-phase client to a name the combined
  // run does not have.
  const apps::Application app = core::scenarios().get("stream-tiny").factory();
  try {
    opt::map_phase_plan(plan, 0, "p9/", client_map(app));
    FAIL() << "bogus prefix accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("does not have"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace cms
