// Tests for the codec substrate: DCT, tables, exp-Golomb VLC and the JPEG
// Huffman coder.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/codec/dct.hpp"
#include "apps/codec/huffman.hpp"
#include "apps/codec/tables.hpp"
#include "apps/codec/vlc.hpp"
#include "common/rng.hpp"

namespace cms::apps {
namespace {

TEST(Dct, ConstantBlockHasOnlyDc) {
  std::uint8_t pix[kBlockSize];
  std::fill(pix, pix + kBlockSize, 200);
  std::int16_t coef[kBlockSize];
  forward_dct(pix, coef);
  EXPECT_NE(coef[0], 0);
  for (int i = 1; i < kBlockSize; ++i) EXPECT_EQ(coef[i], 0) << "AC " << i;
}

TEST(Dct, RoundtripIsNearLossless) {
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    std::uint8_t pix[kBlockSize], rec[kBlockSize];
    for (auto& p : pix) p = static_cast<std::uint8_t>(rng.below(256));
    std::int16_t coef[kBlockSize];
    forward_dct(pix, coef);
    inverse_dct(coef, rec);
    for (int i = 0; i < kBlockSize; ++i)
      EXPECT_NEAR(static_cast<int>(pix[i]), static_cast<int>(rec[i]), 1);
  }
}

TEST(Dct, ResidualRoundtrip) {
  Rng rng(12);
  std::int16_t res[kBlockSize], rec[kBlockSize], coef[kBlockSize];
  for (auto& r : res) r = static_cast<std::int16_t>(rng.range(-200, 200));
  forward_dct_residual(res, coef);
  inverse_dct_residual(coef, rec);
  for (int i = 0; i < kBlockSize; ++i)
    EXPECT_NEAR(res[i], rec[i], 1);
}

TEST(Dct, LinearityOfForwardTransform) {
  // DCT(a+b) == DCT(a) + DCT(b) for residual input (up to rounding).
  Rng rng(13);
  std::int16_t a[kBlockSize], b[kBlockSize], sum[kBlockSize];
  for (int i = 0; i < kBlockSize; ++i) {
    a[i] = static_cast<std::int16_t>(rng.range(-50, 50));
    b[i] = static_cast<std::int16_t>(rng.range(-50, 50));
    sum[i] = static_cast<std::int16_t>(a[i] + b[i]);
  }
  std::int16_t ca[kBlockSize], cb[kBlockSize], cs[kBlockSize];
  forward_dct_residual(a, ca);
  forward_dct_residual(b, cb);
  forward_dct_residual(sum, cs);
  for (int i = 0; i < kBlockSize; ++i)
    EXPECT_NEAR(cs[i], ca[i] + cb[i], 2);
}

TEST(Tables, ZigzagIsAPermutation) {
  const auto& zig = zigzag_order();
  std::array<bool, kBlockSize> seen{};
  for (int k = 0; k < kBlockSize; ++k) {
    EXPECT_LT(zig[k], kBlockSize);
    EXPECT_FALSE(seen[zig[k]]);
    seen[zig[k]] = true;
  }
}

TEST(Tables, ZigzagInverseIsConsistent) {
  const auto& zig = zigzag_order();
  const auto& inv = zigzag_inverse();
  for (int k = 0; k < kBlockSize; ++k) EXPECT_EQ(inv[zig[k]], k);
}

TEST(Tables, ZigzagStartsAtDcAndWalksAntiDiagonals) {
  const auto& zig = zigzag_order();
  EXPECT_EQ(zig[0], 0);
  EXPECT_EQ(zig[1], 1);      // (1,0)
  EXPECT_EQ(zig[2], 8);      // (0,1)
  EXPECT_EQ(zig[63], 63);
}

TEST(Tables, QuantScalingMonotonicInQuality) {
  const auto q10 = scaled_quant(10);
  const auto q50 = scaled_quant(50);
  const auto q90 = scaled_quant(90);
  for (int i = 0; i < kBlockSize; ++i) {
    EXPECT_GE(q10[i], q50[i]);
    EXPECT_GE(q50[i], q90[i]);
    EXPECT_GE(q90[i], 1);
  }
}

TEST(Tables, Quality50IsBaseTable) {
  const auto q = scaled_quant(50);
  for (int i = 0; i < kBlockSize; ++i) EXPECT_EQ(q[i], jpeg_luma_quant()[i]);
}

// ---- exp-Golomb ----

class UeRoundtrip : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(UeRoundtrip, EncodeDecode) {
  BitWriter bw;
  put_ue(bw, GetParam());
  const auto bytes = bw.take();
  BitReader br(bytes.data(), bytes.size());
  EXPECT_EQ(get_ue(br), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Values, UeRoundtrip,
                         ::testing::Values(0u, 1u, 2u, 3u, 7u, 8u, 63u, 64u,
                                           255u, 1023u, 65535u));

TEST(Vlc, SeRoundtripRange) {
  for (int v = -300; v <= 300; ++v) {
    BitWriter bw;
    put_se(bw, v);
    const auto bytes = bw.take();
    BitReader br(bytes.data(), bytes.size());
    EXPECT_EQ(get_se(br), v);
  }
}

TEST(Vlc, UeBitsMatchesActualLength) {
  for (std::uint32_t v : {0u, 1u, 5u, 64u, 1000u}) {
    BitWriter bw;
    put_ue(bw, v);
    const int bits = ue_bits(v);
    EXPECT_EQ((bits + 7) / 8, static_cast<int>(bw.take().size()));
  }
}

TEST(Vlc, StreamOfMixedSymbols) {
  Rng rng(5);
  std::vector<std::int32_t> values;
  BitWriter bw;
  for (int i = 0; i < 500; ++i) {
    const auto v = static_cast<std::int32_t>(rng.range(-128, 128));
    values.push_back(v);
    put_se(bw, v);
  }
  const auto bytes = bw.take();
  BitReader br(bytes.data(), bytes.size());
  for (const auto v : values) EXPECT_EQ(get_se(br), v);
}

// ---- Huffman ----

TEST(Huffman, AllDcSymbolsRoundtrip) {
  const HuffmanTable& t = jpeg_dc_luma();
  for (std::uint8_t s = 0; s <= 11; ++s) {
    BitWriter bw;
    t.encode(bw, s);
    const auto bytes = bw.take();
    BitReader br(bytes.data(), bytes.size());
    EXPECT_EQ(t.decode(br), s);
  }
}

TEST(Huffman, AllAcSymbolsRoundtrip) {
  const HuffmanTable& t = jpeg_ac_luma();
  EXPECT_EQ(t.num_symbols(), 162u);  // standard table size
  for (std::uint8_t run = 0; run <= 15; ++run) {
    for (std::uint8_t cat = 1; cat <= 10; ++cat) {
      const auto sym = static_cast<std::uint8_t>((run << 4) | cat);
      if (t.code_length(sym) == 0) continue;  // not in table
      BitWriter bw;
      t.encode(bw, sym);
      const auto bytes = bw.take();
      BitReader br(bytes.data(), bytes.size());
      EXPECT_EQ(t.decode(br), sym);
    }
  }
}

TEST(Huffman, CodesArePrefixFree) {
  // Decoding a concatenation of symbols recovers the same sequence.
  const HuffmanTable& t = jpeg_ac_luma();
  Rng rng(17);
  std::vector<std::uint8_t> symbols;
  BitWriter bw;
  const std::vector<std::uint8_t> valid = {0x00, 0x01, 0x11, 0x22, 0xF0,
                                           0x05, 0x31, 0x63, 0xA1};
  for (int i = 0; i < 300; ++i) {
    const std::uint8_t s = valid[rng.below(valid.size())];
    symbols.push_back(s);
    t.encode(bw, s);
  }
  const auto bytes = bw.take();
  BitReader br(bytes.data(), bytes.size());
  for (const auto s : symbols) EXPECT_EQ(t.decode(br), s);
}

TEST(Huffman, MagnitudeCategoryBoundaries) {
  EXPECT_EQ(magnitude_category(0), 0);
  EXPECT_EQ(magnitude_category(1), 1);
  EXPECT_EQ(magnitude_category(-1), 1);
  EXPECT_EQ(magnitude_category(2), 2);
  EXPECT_EQ(magnitude_category(3), 2);
  EXPECT_EQ(magnitude_category(4), 3);
  EXPECT_EQ(magnitude_category(255), 8);
  EXPECT_EQ(magnitude_category(256), 9);
}

TEST(Huffman, MagnitudeRoundtrip) {
  for (int v = -1000; v <= 1000; v += 7) {
    const int cat = magnitude_category(v);
    BitWriter bw;
    put_magnitude(bw, v, cat);
    bw.put(0xF, 4);  // padding so take() doesn't alter the bits we read
    const auto bytes = bw.take();
    BitReader br(bytes.data(), bytes.size());
    EXPECT_EQ(get_magnitude(br, cat), v) << "value " << v;
  }
}

}  // namespace
}  // namespace cms::apps
