// Tests for the static-assignment throughput optimizer (paper section 3.1).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "opt/throughput.hpp"

// GCC 12 emits a bogus -Wrestrict on inlined std::string concatenation in
// loads() under -O2 (gcc PR105329); CI builds with -Werror.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wrestrict"
#endif

namespace cms::opt {
namespace {

std::vector<TaskLoad> loads(std::initializer_list<double> cycles) {
  std::vector<TaskLoad> out;
  TaskId id = 0;
  for (const double c : cycles)
    out.push_back({id++, "t" + std::to_string(id), c});
  return out;
}

TEST(Throughput, EvaluateSumsPerProcessor) {
  const auto tasks = loads({10, 20, 30});
  const Assignment a = evaluate_assignment(tasks, {0, 0, 1}, 2);
  EXPECT_DOUBLE_EQ(a.proc_load[0], 30.0);
  EXPECT_DOUBLE_EQ(a.proc_load[1], 30.0);
  EXPECT_DOUBLE_EQ(a.makespan, 30.0);
}

TEST(Throughput, LptBalances) {
  const auto tasks = loads({7, 5, 4, 4, 3, 3});
  const Assignment a = assign_lpt(tasks, 2);
  EXPECT_DOUBLE_EQ(a.makespan, 14.0);  // LPT's result here
  // The exact solver finds the perfect split of 26.
  EXPECT_DOUBLE_EQ(assign_exact(tasks, 2).makespan, 13.0);
}

TEST(Throughput, ExactFindsOptimum) {
  // LPT is suboptimal here: {8,7,6,5,4} on 2 procs. LPT: 8+6+4=18 vs 7+5=12
  // (makespan 18); optimum is 15.
  const auto tasks = loads({8, 7, 6, 5, 4});
  const Assignment exact = assign_exact(tasks, 2);
  EXPECT_DOUBLE_EQ(exact.makespan, 15.0);
}

TEST(Throughput, LocalSearchNeverWorseThanLpt) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<TaskLoad> tasks;
    const int n = 5 + static_cast<int>(rng.below(10));
    for (int i = 0; i < n; ++i)
      tasks.push_back({i, "t", 1.0 + rng.next_double() * 100.0});
    const Assignment lpt = assign_lpt(tasks, 4);
    const Assignment ls = assign_local_search(tasks, 4);
    EXPECT_LE(ls.makespan, lpt.makespan + 1e-9);
  }
}

TEST(Throughput, ExactNeverWorseThanLocalSearch) {
  Rng rng(4);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<TaskLoad> tasks;
    for (int i = 0; i < 9; ++i)
      tasks.push_back({i, "t", 1.0 + rng.next_double() * 50.0});
    const Assignment ls = assign_local_search(tasks, 3);
    const Assignment exact = assign_exact(tasks, 3);
    EXPECT_LE(exact.makespan, ls.makespan + 1e-9);
    // Lower bound: total / procs.
    double total = 0;
    for (const auto& t : tasks) total += t.cycles;
    EXPECT_GE(exact.makespan + 1e-9, total / 3.0);
  }
}

TEST(Throughput, SingleProcessorIsSum) {
  const auto tasks = loads({10, 20, 30});
  const Assignment a = assign_exact(tasks, 1);
  EXPECT_DOUBLE_EQ(a.makespan, 60.0);
}

TEST(Throughput, MoreProcessorsNeverHurt) {
  const auto tasks = loads({9, 8, 7, 6, 5, 4, 3});
  double prev = 1e18;
  for (std::uint32_t p = 1; p <= 4; ++p) {
    const Assignment a = assign_exact(tasks, p);
    EXPECT_LE(a.makespan, prev + 1e-9);
    prev = a.makespan;
  }
}

TEST(Throughput, PerSecondConversion) {
  EXPECT_DOUBLE_EQ(throughput_per_second(300e6, 300.0), 1.0);
  EXPECT_DOUBLE_EQ(throughput_per_second(150e6, 300.0), 2.0);
  EXPECT_DOUBLE_EQ(throughput_per_second(0, 300.0), 0.0);
}

}  // namespace
}  // namespace cms::opt
