// Tests for the timing engine, the OS scheduler and their interplay,
// using small synthetic tasks.
#include <gtest/gtest.h>

#include <memory>

#include "sim/engine.hpp"
#include "sim/os.hpp"
#include "sim/platform.hpp"
#include "sim/task.hpp"

namespace cms::sim {
namespace {

PlatformConfig tiny_platform(std::uint32_t procs = 2) {
  PlatformConfig cfg;
  cfg.hier.num_procs = procs;
  cfg.hier.l1 = mem::CacheConfig{.size_bytes = 1024, .line_bytes = 64, .ways = 2};
  cfg.hier.l2 = mem::CacheConfig{.size_bytes = 16 * 1024, .line_bytes = 64, .ways = 4};
  cfg.task_switch_cost = 10;
  cfg.quantum_firings = 2;
  return cfg;
}

/// Fires `firings` times; each firing does `reads` sequential reads from a
/// private range and `compute` cycles.
class WorkTask final : public Task {
 public:
  WorkTask(TaskId id, std::string name, int firings, int reads, int compute)
      : Task(id, std::move(name)), firings_(firings), reads_(reads),
        compute_(compute) {}

  bool can_fire() const override { return fired_ < firings_; }
  bool done() const override { return fired_ >= firings_; }

  void fire(TaskContext& ctx) override {
    for (int i = 0; i < reads_; ++i) {
      ctx.mem().compute(static_cast<std::uint32_t>(compute_));
      ctx.mem().read(static_cast<Addr>(id()) * 0x100000 +
                         static_cast<Addr>(cursor_++) * 64,
                     4);
    }
    ++fired_;
  }

  int fired() const { return fired_; }

 private:
  int firings_, reads_, compute_;
  int fired_ = 0;
  std::uint64_t cursor_ = 0;
};

/// A task that is never ready (for deadlock detection).
class StuckTask final : public Task {
 public:
  StuckTask(TaskId id) : Task(id, "stuck") {}
  bool can_fire() const override { return false; }
  bool done() const override { return false; }
  void fire(TaskContext&) override {}
};

TEST(Engine, RunsAllFirings) {
  Platform platform(tiny_platform());
  Os os(SchedPolicy::kMigrating, 2);
  WorkTask a(0, "a", 5, 10, 3), b(1, "b", 7, 4, 2);
  TimingEngine engine(platform, os, {&a, &b});
  const SimResults res = engine.run();
  EXPECT_FALSE(res.deadlocked);
  EXPECT_EQ(a.fired(), 5);
  EXPECT_EQ(b.fired(), 7);
  ASSERT_EQ(res.tasks.size(), 2u);
  EXPECT_EQ(res.tasks[0].firings, 5u);
  EXPECT_EQ(res.tasks[1].firings, 7u);
  EXPECT_GT(res.makespan, 0u);
}

TEST(Engine, InstructionAccounting) {
  Platform platform(tiny_platform(1));
  Os os(SchedPolicy::kMigrating, 1);
  WorkTask a(0, "a", 2, 10, 3);
  TimingEngine engine(platform, os, {&a});
  const SimResults res = engine.run();
  // Each firing: 10 reads + 30 compute cycles = 40 "instructions".
  EXPECT_EQ(res.tasks[0].instructions, 80u);
  EXPECT_EQ(res.total_instructions, 80u);
}

TEST(Engine, DetectsDeadlock) {
  Platform platform(tiny_platform());
  Os os(SchedPolicy::kMigrating, 2);
  StuckTask s(0);
  TimingEngine engine(platform, os, {&s});
  const SimResults res = engine.run();
  EXPECT_TRUE(res.deadlocked);
}

TEST(Engine, FinishedPredicateStopsEarly) {
  Platform platform(tiny_platform());
  Os os(SchedPolicy::kMigrating, 2);
  WorkTask a(0, "a", 1000000, 2, 1);
  int count = 0;
  TimingEngine engine(platform, os, {&a}, [&count] { return ++count > 50; });
  const SimResults res = engine.run();
  EXPECT_FALSE(res.deadlocked);
  EXPECT_LT(a.fired(), 1000000);
}

TEST(Engine, StaticAssignmentPinsTasks) {
  Platform platform(tiny_platform(2));
  Os os(SchedPolicy::kStatic, 2);
  WorkTask a(0, "a", 6, 4, 2), b(1, "b", 6, 4, 2);
  os.assign(0, 0);
  os.assign(1, 1);
  TimingEngine engine(platform, os, {&a, &b});
  const SimResults res = engine.run();
  EXPECT_FALSE(res.deadlocked);
  // Both processors did work (one task each).
  EXPECT_GT(res.procs[0].instructions, 0u);
  EXPECT_GT(res.procs[1].instructions, 0u);
}

TEST(Engine, StaticAssignmentToOneProcLeavesOtherIdle) {
  Platform platform(tiny_platform(2));
  Os os(SchedPolicy::kStatic, 2);
  WorkTask a(0, "a", 6, 4, 2), b(1, "b", 6, 4, 2);
  os.assign(0, 0);
  os.assign(1, 0);
  TimingEngine engine(platform, os, {&a, &b});
  const SimResults res = engine.run();
  EXPECT_FALSE(res.deadlocked);
  EXPECT_EQ(res.procs[1].instructions, 0u);
  EXPECT_GT(res.procs[0].switches, 0u);
}

TEST(Engine, DeterministicAcrossRuns) {
  auto run_once = [] {
    Platform platform(tiny_platform());
    Os os(SchedPolicy::kMigrating, 2, 3);
    WorkTask a(0, "a", 20, 8, 2), b(1, "b", 15, 6, 3), c(2, "c", 10, 12, 1);
    TimingEngine engine(platform, os, {&a, &b, &c});
    return engine.run();
  };
  const SimResults r1 = run_once();
  const SimResults r2 = run_once();
  EXPECT_EQ(r1.makespan, r2.makespan);
  EXPECT_EQ(r1.l2_misses, r2.l2_misses);
  for (std::size_t i = 0; i < r1.tasks.size(); ++i) {
    EXPECT_EQ(r1.tasks[i].l2.misses, r2.tasks[i].l2.misses);
    EXPECT_EQ(r1.tasks[i].active_cycles, r2.tasks[i].active_cycles);
  }
}

TEST(Engine, JitterChangesScheduleButNotWork) {
  auto run_with = [](std::uint64_t jitter) {
    Platform platform(tiny_platform());
    Os os(SchedPolicy::kMigrating, 2, jitter);
    WorkTask a(0, "a", 20, 8, 2), b(1, "b", 15, 6, 3), c(2, "c", 10, 12, 1);
    TimingEngine engine(platform, os, {&a, &b, &c});
    return engine.run();
  };
  const SimResults r1 = run_with(0);
  const SimResults r2 = run_with(1);
  // The same firings happen in both runs.
  EXPECT_EQ(r1.tasks[0].firings, r2.tasks[0].firings);
  EXPECT_EQ(r1.tasks[0].instructions, r2.tasks[0].instructions);
}

TEST(Engine, SwitchCostCharged) {
  Platform platform(tiny_platform(1));
  Os os(SchedPolicy::kMigrating, 1);
  WorkTask a(0, "a", 4, 2, 1), b(1, "b", 4, 2, 1);
  TimingEngine engine(platform, os, {&a, &b});
  const SimResults res = engine.run();
  EXPECT_GT(res.procs[0].switches, 1u);
  EXPECT_GE(res.procs[0].switch_cycles,
            res.procs[0].switches * tiny_platform().task_switch_cost);
}

TEST(Engine, QuantumKeepsTaskScheduled) {
  // With quantum 4 and two tasks on one processor, switches are bounded
  // by roughly total_firings / quantum (plus one).
  PlatformConfig cfg = tiny_platform(1);
  cfg.quantum_firings = 4;
  Platform platform(cfg);
  Os os(SchedPolicy::kMigrating, 1);
  WorkTask a(0, "a", 16, 2, 1), b(1, "b", 16, 2, 1);
  TimingEngine engine(platform, os, {&a, &b});
  const SimResults res = engine.run();
  EXPECT_LE(res.procs[0].switches, 10u);
}

TEST(Engine, CpiAtLeastOne) {
  Platform platform(tiny_platform());
  Os os(SchedPolicy::kMigrating, 2);
  WorkTask a(0, "a", 10, 10, 2);
  TimingEngine engine(platform, os, {&a});
  const SimResults res = engine.run();
  for (const auto& p : res.procs) {
    if (p.instructions > 0) {
      EXPECT_GE(p.cpi(), 1.0);
    }
  }
}

TEST(Engine, DispatchLimitStopsRunaway) {
  PlatformConfig cfg = tiny_platform();
  cfg.max_dispatches = 10;
  Platform platform(cfg);
  Os os(SchedPolicy::kMigrating, 2);
  WorkTask a(0, "a", 1000000, 1, 1);
  TimingEngine engine(platform, os, {&a});
  const SimResults res = engine.run();
  EXPECT_TRUE(res.hit_dispatch_limit);
  EXPECT_EQ(res.dispatches, 10u);
}

TEST(Os, RoundRobinCyclesThroughReadyTasks) {
  Os os(SchedPolicy::kMigrating, 1);
  WorkTask a(0, "a", 5, 1, 1), b(1, "b", 5, 1, 1), c(2, "c", 5, 1, 1);
  std::vector<Task*> tasks = {&a, &b, &c};
  std::vector<bool> busy(3, false);
  const int first = os.pick(0, tasks, busy);
  const int second = os.pick(0, tasks, busy);
  const int third = os.pick(0, tasks, busy);
  EXPECT_NE(first, second);
  EXPECT_NE(second, third);
  EXPECT_NE(first, third);
}

TEST(Os, SkipsBusyTasks) {
  Os os(SchedPolicy::kMigrating, 1);
  WorkTask a(0, "a", 5, 1, 1), b(1, "b", 5, 1, 1);
  std::vector<Task*> tasks = {&a, &b};
  std::vector<bool> busy = {true, false};
  EXPECT_EQ(os.pick(0, tasks, busy), 1);
}

TEST(Os, StaticPolicyFiltersByAssignment) {
  Os os(SchedPolicy::kStatic, 2);
  WorkTask a(0, "a", 5, 1, 1), b(1, "b", 5, 1, 1);
  os.assign(0, 0);
  os.assign(1, 1);
  std::vector<Task*> tasks = {&a, &b};
  std::vector<bool> busy(2, false);
  EXPECT_EQ(os.pick(0, tasks, busy), 0);
  EXPECT_EQ(os.pick(1, tasks, busy), 1);
}

TEST(Os, UnassignedTaskNeverPickedUnderStatic) {
  Os os(SchedPolicy::kStatic, 1);
  WorkTask a(0, "a", 5, 1, 1);
  std::vector<Task*> tasks = {&a};
  std::vector<bool> busy = {false};
  EXPECT_EQ(os.pick(0, tasks, busy), -1);
}

}  // namespace
}  // namespace cms::sim
