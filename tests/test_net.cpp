// Tests for net::LineServer (the poll-loop socket transport): many
// pipelined connections get their responses in request order no matter
// how the worker pool interleaves, the bounded admission queue sheds
// with the canned busy response (which still occupies its sequence slot),
// admission deadlines expire in-queue without invoking the handler,
// overlong lines answer then close, empty/CRLF lines are tolerated, and
// a graceful shutdown() drains every admitted request before join()
// returns. Everything runs against a stub handler — the transport knows
// nothing of the plan protocol, and these tests keep it that way.
//
// net::FrameServer (the length-prefixed binary cousin built on the same
// net::SocketServer machinery) gets the equivalent suite: binary-safe
// echo with pipelined ordering, byte-dripped reassembly, oversized-frame
// fatality, and busy shedding with framed canned responses.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "net/frame_server.hpp"
#include "net/line_server.hpp"

namespace cms::net {
namespace {

/// Minimal blocking line-protocol client.
class TestClient {
 public:
  explicit TestClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
              0)
        << strerror(errno);
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  TestClient(TestClient&& o) noexcept : fd_(o.fd_), buf_(std::move(o.buf_)) {
    o.fd_ = -1;
  }
  TestClient(const TestClient&) = delete;

  void send_raw(const std::string& bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                               MSG_NOSIGNAL);
      ASSERT_GT(n, 0);
      off += static_cast<std::size_t>(n);
    }
  }

  /// One response line (newline stripped); nullopt when the server closed.
  std::optional<std::string> recv_line() {
    for (;;) {
      const std::size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
      if (n <= 0) return std::nullopt;
      buf_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  /// Exactly `n` raw bytes; nullopt when the server closed first.
  std::optional<std::string> recv_exact(std::size_t n) {
    while (buf_.size() < n) {
      char chunk[4096];
      const ssize_t got = ::recv(fd_, chunk, sizeof chunk, 0);
      if (got <= 0) return std::nullopt;
      buf_.append(chunk, static_cast<std::size_t>(got));
    }
    std::string out = buf_.substr(0, n);
    buf_.erase(0, n);
    return out;
  }

 private:
  int fd_ = -1;
  std::string buf_;
};

/// A handler gate: requests block inside the handler until release() —
/// the deterministic way to hold the single worker busy while the IO
/// thread admits (or sheds) everything behind it.
struct Gate {
  std::mutex mu;
  std::condition_variable cv;
  bool open = false;
  std::atomic<int> entered{0};

  void wait_entered(int n) {
    while (entered.load() < n) std::this_thread::sleep_for(
        std::chrono::milliseconds(1));
  }
  void block() {
    entered.fetch_add(1);
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return open; });
  }
  void release() {
    {
      std::lock_guard<std::mutex> lk(mu);
      open = true;
    }
    cv.notify_all();
  }
};

TEST(LineServer, PipelinedConnectionsAnswerInRequestOrder) {
  LineServerConfig cfg;
  cfg.workers = 8;
  // Scramble worker completion order on purpose: a line's sleep depends
  // on its content, so later requests routinely finish first and only
  // the reorder map can restore per-connection ordering.
  cfg.handler = [](const std::string& line) {
    const int ms = (line.back() - '0') % 3;
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    return "echo:" + line;
  };
  LineServer server(std::move(cfg));
  server.start();

  constexpr int kConns = 4;
  constexpr int kLines = 10;
  std::vector<TestClient> clients;
  for (int c = 0; c < kConns; ++c) clients.emplace_back(server.port());
  for (int c = 0; c < kConns; ++c) {
    std::string burst;
    for (int i = 0; i < kLines; ++i) {
      burst += 'c';
      burst += std::to_string(c);
      burst += "-l";
      burst += std::to_string(i);
      burst += '\n';
    }
    clients[c].send_raw(burst);
  }
  for (int c = 0; c < kConns; ++c) {
    for (int i = 0; i < kLines; ++i) {
      const auto resp = clients[c].recv_line();
      ASSERT_TRUE(resp.has_value());
      std::string want = "echo:c";
      want += std::to_string(c);
      want += "-l";
      want += std::to_string(i);
      EXPECT_EQ(*resp, want);
    }
  }
  const LineServer::Stats s = server.stats();
  EXPECT_EQ(s.accepted, static_cast<std::uint64_t>(kConns));
  EXPECT_EQ(s.served, static_cast<std::uint64_t>(kConns * kLines));
  EXPECT_EQ(s.shed, 0u);
}

TEST(LineServer, BoundedQueueShedsWithBusyResponseInOrder) {
  Gate gate;
  LineServerConfig cfg;
  cfg.workers = 1;
  cfg.max_pending = 1;
  cfg.busy_response = "BUSY";
  cfg.handler = [&](const std::string& line) {
    if (line == "block") gate.block();
    return "ok:" + line;
  };
  LineServer server(std::move(cfg));
  server.start();

  TestClient c(server.port());
  // One request INSIDE the handler (the queue stays empty while it
  // blocks), then four pipelined behind it: one fills the queue, three
  // MUST shed — and the busy responses still arrive in request order.
  c.send_raw("block\n");
  gate.wait_entered(1);
  c.send_raw("q1\nq2\nq3\nq4\n");
  // Admission happens on the IO thread independent of the stuck worker;
  // wait until all five lines are accounted for before releasing.
  while (server.stats().requests < 5)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(server.stats().shed, 3u);
  gate.release();

  const char* want[] = {"ok:block", "ok:q1", "BUSY", "BUSY", "BUSY"};
  for (const char* w : want) {
    const auto resp = c.recv_line();
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(*resp, w);
  }
  EXPECT_EQ(server.stats().served, 2u);
}

TEST(LineServer, AdmissionDeadlineExpiresInQueueWithoutHandler) {
  Gate gate;
  std::atomic<int> handled_dl{0};
  LineServerConfig cfg;
  cfg.workers = 1;
  cfg.deadline_response = "EXPIRED";
  cfg.deadline_of = [](const std::string& line)
      -> std::optional<std::uint64_t> {
    if (line.rfind("dl", 0) == 0) return 1;  // 1ms admission deadline
    return std::nullopt;
  };
  cfg.handler = [&](const std::string& line) {
    if (line == "block") gate.block();
    if (line.rfind("dl", 0) == 0) ++handled_dl;
    return "ok:" + line;
  };
  LineServer server(std::move(cfg));
  server.start();

  TestClient c(server.port());
  c.send_raw("block\n");
  gate.wait_entered(1);
  c.send_raw("dl-behind\n");
  while (server.stats().requests < 2)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  // The deadline_ms=1 request now sits in the queue behind the stuck
  // worker; by the time it is dequeued its clock has long run out.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  gate.release();

  EXPECT_EQ(c.recv_line(), std::optional<std::string>("ok:block"));
  EXPECT_EQ(c.recv_line(), std::optional<std::string>("EXPIRED"));
  EXPECT_EQ(server.stats().deadline_expired, 1u);
  EXPECT_EQ(handled_dl.load(), 0);  // the handler never saw it
}

TEST(LineServer, OverlongLineAnswersThenCloses) {
  LineServerConfig cfg;
  cfg.workers = 1;
  cfg.max_line_bytes = 32;
  cfg.overlong_response = "TOO-LONG";
  cfg.handler = [](const std::string& line) { return "ok:" + line; };
  LineServer server(std::move(cfg));
  server.start();

  TestClient c(server.port());
  // A short line first: it must still be answered, in order, before the
  // overlong error.
  c.send_raw("short\n");
  c.send_raw(std::string(100, 'a'));  // no newline in sight, > 32 bytes
  EXPECT_EQ(c.recv_line(), std::optional<std::string>("ok:short"));
  EXPECT_EQ(c.recv_line(), std::optional<std::string>("TOO-LONG"));
  EXPECT_EQ(c.recv_line(), std::nullopt);  // connection closed
  EXPECT_EQ(server.stats().closed_overlong, 1u);
}

TEST(LineServer, OverlongTerminatedLineInOneBatchStillCloses) {
  // Regression: the cap used to be enforced only on the UNTERMINATED
  // tail of the read buffer, so an overlong line whose '\n' arrived in
  // the same recv() batch sailed straight into the handler. The cap must
  // apply to extracted lines too: answer the error at the line's slot,
  // close after the flush, and never admit anything pipelined behind it.
  std::atomic<int> handled_long{0};
  LineServerConfig cfg;
  cfg.workers = 1;
  cfg.max_line_bytes = 32;
  cfg.overlong_response = "TOO-LONG";
  cfg.handler = [&](const std::string& line) {
    if (line.size() > 32) ++handled_long;
    return "ok:" + line;
  };
  LineServer server(std::move(cfg));
  server.start();

  TestClient c(server.port());
  // ONE batch: a good line, a terminated overlong line, a line behind it.
  c.send_raw("short\n" + std::string(100, 'a') + "\nafter\n");
  EXPECT_EQ(c.recv_line(), std::optional<std::string>("ok:short"));
  EXPECT_EQ(c.recv_line(), std::optional<std::string>("TOO-LONG"));
  EXPECT_EQ(c.recv_line(), std::nullopt);  // closed; "after" never answered
  EXPECT_EQ(handled_long.load(), 0);       // the handler never saw it
  const LineServer::Stats s = server.stats();
  EXPECT_EQ(s.closed_overlong, 1u);
  EXPECT_EQ(s.served, 1u);  // only "short"
}

TEST(LineServer, CrlfAndBlankLinesAreTolerated) {
  LineServerConfig cfg;
  cfg.workers = 1;
  cfg.handler = [](const std::string& line) { return "ok:" + line; };
  LineServer server(std::move(cfg));
  server.start();

  TestClient c(server.port());
  c.send_raw("a\r\n\r\n\nb\n");
  EXPECT_EQ(c.recv_line(), std::optional<std::string>("ok:a"));
  EXPECT_EQ(c.recv_line(), std::optional<std::string>("ok:b"));
  EXPECT_EQ(server.stats().served, 2u);  // blank lines were never admitted
}

TEST(LineServer, GracefulShutdownDrainsEveryAdmittedRequest) {
  Gate gate;
  LineServerConfig cfg;
  cfg.workers = 1;
  cfg.handler = [&](const std::string& line) {
    if (line == "block") gate.block();
    return "ok:" + line;
  };
  LineServer server(std::move(cfg));
  server.start();

  TestClient c(server.port());
  c.send_raw("block\nq1\nq2\n");
  gate.wait_entered(1);
  while (server.stats().requests < 3)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));

  // Shutdown with one request stuck in the handler and two queued: all
  // three must still be answered and flushed before join() returns.
  server.shutdown();
  server.shutdown();  // idempotent
  gate.release();
  server.join();

  EXPECT_EQ(c.recv_line(), std::optional<std::string>("ok:block"));
  EXPECT_EQ(c.recv_line(), std::optional<std::string>("ok:q1"));
  EXPECT_EQ(c.recv_line(), std::optional<std::string>("ok:q2"));
  EXPECT_EQ(c.recv_line(), std::nullopt);  // server is gone
  EXPECT_EQ(server.stats().served, 3u);
}

TEST(LineServer, ConstructorValidatesConfig) {
  LineServerConfig no_handler;
  EXPECT_THROW(LineServer{std::move(no_handler)}, std::invalid_argument);
  LineServerConfig no_workers;
  no_workers.workers = 0;
  no_workers.handler = [](const std::string&) { return std::string(); };
  EXPECT_THROW(LineServer{std::move(no_workers)}, std::invalid_argument);
  // An ephemeral bind resolves to a real port.
  LineServerConfig ok;
  ok.handler = [](const std::string&) { return std::string("x"); };
  LineServer server(std::move(ok));
  EXPECT_GT(server.port(), 0);
}

/// Blocking length-prefixed-frame client for FrameServer tests.
class FrameClient {
 public:
  explicit FrameClient(std::uint16_t port) : c_(port) {}

  void send_frame(const std::string& payload) {
    c_.send_raw(frame_encode(payload));
  }
  void send_raw(const std::string& bytes) { c_.send_raw(bytes); }

  /// One response frame payload; nullopt when the server closed.
  std::optional<std::string> recv_frame() {
    const auto header = c_.recv_exact(kFrameHeaderBytes);
    if (!header) return std::nullopt;
    std::uint32_t len = 0;
    for (int i = 3; i >= 0; --i)
      len = (len << 8) | static_cast<unsigned char>((*header)[i]);
    if (len == 0) return std::string();
    return c_.recv_exact(len);
  }

 private:
  TestClient c_;
};

TEST(FrameServer, EchoesBinaryPayloadsInRequestOrder) {
  FrameServerConfig cfg;
  cfg.workers = 4;
  cfg.handler = [](const std::string& payload) {
    return "echo:" + payload;
  };
  FrameServer server(std::move(cfg));
  server.start();

  FrameClient c(server.port());
  // Payloads with embedded '\n' and '\0' — exactly what line framing
  // cannot carry — pipelined in one burst.
  std::vector<std::string> payloads = {
      std::string("a\nb"), std::string("c\0d", 3), std::string(),
      std::string(1000, '\xff')};
  for (const auto& p : payloads) c.send_frame(p);
  for (const auto& p : payloads) {
    const auto resp = c.recv_frame();
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(*resp, "echo:" + p);
  }
  const FrameServer::Stats s = server.stats();
  EXPECT_EQ(s.served, payloads.size());
  EXPECT_EQ(s.shed, 0u);
}

TEST(FrameServer, PartialHeaderAndPayloadChunksReassemble) {
  FrameServerConfig cfg;
  cfg.workers = 1;
  cfg.handler = [](const std::string& payload) { return payload + "!"; };
  FrameServer server(std::move(cfg));
  server.start();

  FrameClient c(server.port());
  const std::string wire = frame_encode("hello");
  // Drip the frame byte by byte: header split, payload split.
  for (char b : wire) {
    c.send_raw(std::string(1, b));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(c.recv_frame(), std::optional<std::string>("hello!"));
}

TEST(FrameServer, OversizedFrameAnswersFatalThenCloses) {
  std::atomic<int> handled{0};
  FrameServerConfig cfg;
  cfg.workers = 1;
  cfg.max_frame_bytes = 64;
  cfg.fatal_response = "FATAL";
  cfg.handler = [&](const std::string& payload) {
    ++handled;
    return payload;
  };
  FrameServer server(std::move(cfg));
  server.start();

  FrameClient c(server.port());
  c.send_frame("fine");
  // A header declaring a 1 MB frame: fatal on sight — the body is never
  // even sent, so the server must not wait for it.
  c.send_raw(std::string("\x00\x00\x10\x00", 4));  // 0x00100000 LE
  EXPECT_EQ(c.recv_frame(), std::optional<std::string>("fine"));
  EXPECT_EQ(c.recv_frame(), std::optional<std::string>("FATAL"));
  EXPECT_EQ(c.recv_frame(), std::nullopt);  // connection closed
  EXPECT_EQ(handled.load(), 1);
  EXPECT_EQ(server.stats().closed_protocol, 1u);
}

TEST(FrameServer, BoundedQueueShedsWithBusyFrame) {
  Gate gate;
  FrameServerConfig cfg;
  cfg.workers = 1;
  cfg.max_pending = 1;
  cfg.busy_response = "BUSY";
  cfg.handler = [&](const std::string& payload) {
    if (payload == "block") gate.block();
    return "ok:" + payload;
  };
  FrameServer server(std::move(cfg));
  server.start();

  FrameClient c(server.port());
  c.send_frame("block");
  gate.wait_entered(1);
  c.send_frame("q1");
  c.send_frame("q2");
  c.send_frame("q3");
  while (server.stats().requests < 4)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(server.stats().shed, 2u);
  gate.release();

  const char* want[] = {"ok:block", "ok:q1", "BUSY", "BUSY"};
  for (const char* w : want) {
    const auto resp = c.recv_frame();
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(*resp, w);
  }
}

TEST(FrameServer, ConstructorValidatesConfig) {
  FrameServerConfig no_handler;
  EXPECT_THROW(FrameServer{std::move(no_handler)}, std::invalid_argument);
  FrameServerConfig no_workers;
  no_workers.workers = 0;
  no_workers.handler = [](const std::string&) { return std::string(); };
  EXPECT_THROW(FrameServer{std::move(no_workers)}, std::invalid_argument);
  FrameServerConfig ok;
  ok.handler = [](const std::string&) { return std::string("x"); };
  FrameServer server(std::move(ok));
  EXPECT_GT(server.port(), 0);
}

}  // namespace
}  // namespace cms::net
