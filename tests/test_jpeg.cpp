// Tests for the JPEG codec and its KPN pipeline.
#include <gtest/gtest.h>

#include "apps/jpeg/jpeg_codec.hpp"
#include "apps/jpeg/jpeg_kpn.hpp"
#include "sim/engine.hpp"
#include "sim/os.hpp"
#include "sim/platform.hpp"

namespace cms::apps {
namespace {

TEST(JpegCodec, RoundtripQuality) {
  const Image src = testimg::blocks(64, 48, 21);
  const JpegStream s = jpeg_encode(src, 75);
  EXPECT_GT(s.payload.size(), 100u);
  EXPECT_LT(s.payload.size(), src.pixels().size());  // it compresses
  const Image dec = jpeg_reference_decode(s);
  EXPECT_GT(psnr(src, dec), 30.0);
}

TEST(JpegCodec, HigherQualityMeansBetterPsnrAndBiggerPayload) {
  const Image src = testimg::blocks(64, 64, 22);
  const JpegStream lo = jpeg_encode(src, 25);
  const JpegStream hi = jpeg_encode(src, 90);
  EXPECT_GT(hi.payload.size(), lo.payload.size());
  EXPECT_GT(psnr(src, jpeg_reference_decode(hi)),
            psnr(src, jpeg_reference_decode(lo)));
}

TEST(JpegCodec, Deterministic) {
  const Image src = testimg::gradient(32, 32, 3);
  EXPECT_EQ(jpeg_encode(src, 75).payload, jpeg_encode(src, 75).payload);
}

class JpegSizes : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(JpegSizes, RoundtripAtVariousDimensions) {
  const auto [w, h] = GetParam();
  const Image src = testimg::blocks(w, h, 33);
  const Image dec = jpeg_reference_decode(jpeg_encode(src, 80));
  EXPECT_EQ(dec.width(), w);
  EXPECT_EQ(dec.height(), h);
  EXPECT_GT(psnr(src, dec), 28.0);
}

INSTANTIATE_TEST_SUITE_P(Dims, JpegSizes,
                         ::testing::Values(std::pair{8, 8}, std::pair{16, 8},
                                           std::pair{64, 32}, std::pair{48, 48},
                                           std::pair{128, 96}));

TEST(JpegSequence, EncodesDistinctPictures) {
  const JpegSequence seq = jpeg_encode_sequence(32, 32, 3, 75, 9);
  ASSERT_EQ(seq.num_pictures(), 3);
  EXPECT_NE(seq.pictures[0].payload, seq.pictures[1].payload);
  EXPECT_EQ(seq.total_payload_bytes(),
            seq.pictures[0].payload.size() + seq.pictures[1].payload.size() +
                seq.pictures[2].payload.size());
}

/// Run one decoder pipeline to completion on a tiny platform.
sim::SimResults run_jpeg_pipeline(kpn::Network& net) {
  sim::PlatformConfig pc;
  pc.hier.num_procs = 2;
  pc.hier.l2.size_bytes = 64 * 1024;
  sim::Platform platform(pc);
  for (const auto& b : net.buffers())
    platform.hierarchy().l2().interval_table().add(b.base, b.footprint, b.id);
  sim::Os os(sim::SchedPolicy::kMigrating, 2);
  sim::TimingEngine engine(platform, os, net.tasks());
  return engine.run();
}

TEST(JpegKpn, PipelineMatchesReferenceDecoder) {
  kpn::Network net;
  const sim::Region seg = net.make_segment("appl_data", 4096);
  const SharedCodecTables tables(seg, 75);
  const JpegSequence seq = jpeg_encode_sequence(48, 32, 1, 75, 77);
  const JpegPipeline pipe = add_jpeg_decoder(net, "1", seq, tables);

  const sim::SimResults res = run_jpeg_pipeline(net);
  EXPECT_FALSE(res.deadlocked);
  EXPECT_TRUE(net.all_tasks_done());

  const Image want = jpeg_reference_decode(seq.pictures[0]);
  EXPECT_EQ(pipe.output->host_data(), want.pixels());
}

TEST(JpegKpn, SequenceLeavesLastPictureInOutput) {
  kpn::Network net;
  const sim::Region seg = net.make_segment("appl_data", 4096);
  const SharedCodecTables tables(seg, 75);
  const JpegSequence seq = jpeg_encode_sequence(32, 32, 3, 75, 78);
  const JpegPipeline pipe = add_jpeg_decoder(net, "1", seq, tables);

  const sim::SimResults res = run_jpeg_pipeline(net);
  EXPECT_FALSE(res.deadlocked);
  const Image want = jpeg_reference_decode(seq.pictures.back());
  EXPECT_EQ(pipe.output->host_data(), want.pixels());
}

TEST(JpegKpn, TaskNamesFollowPaper) {
  kpn::Network net;
  const sim::Region seg = net.make_segment("appl_data", 4096);
  const SharedCodecTables tables(seg, 75);
  const JpegSequence seq = jpeg_encode_sequence(16, 16, 1, 75, 1);
  add_jpeg_decoder(net, "1", seq, tables);
  EXPECT_NE(net.find_process("FrontEnd1"), nullptr);
  EXPECT_NE(net.find_process("IDCT1"), nullptr);
  EXPECT_NE(net.find_process("Raster1"), nullptr);
  EXPECT_NE(net.find_process("BackEnd1"), nullptr);
}

TEST(JpegKpn, AllTasksDoWork) {
  kpn::Network net;
  const sim::Region seg = net.make_segment("appl_data", 4096);
  const SharedCodecTables tables(seg, 75);
  const JpegSequence seq = jpeg_encode_sequence(32, 32, 2, 75, 5);
  add_jpeg_decoder(net, "1", seq, tables);
  const sim::SimResults res = run_jpeg_pipeline(net);
  for (const auto& t : res.tasks) {
    EXPECT_GT(t.firings, 0u) << t.name;
    EXPECT_GT(t.instructions, 0u) << t.name;
    EXPECT_GT(t.l2.accesses, 0u) << t.name;
  }
}

TEST(JpegKpn, TwoInstancesCoexist) {
  kpn::Network net;
  const sim::Region seg = net.make_segment("appl_data", 4096);
  const SharedCodecTables tables(seg, 75);
  const JpegSequence seq1 = jpeg_encode_sequence(32, 32, 1, 75, 6);
  const JpegSequence seq2 = jpeg_encode_sequence(48, 32, 1, 75, 7);
  const JpegPipeline p1 = add_jpeg_decoder(net, "1", seq1, tables);
  const JpegPipeline p2 = add_jpeg_decoder(net, "2", seq2, tables);
  const sim::SimResults res = run_jpeg_pipeline(net);
  EXPECT_FALSE(res.deadlocked);
  EXPECT_EQ(p1.output->host_data(),
            jpeg_reference_decode(seq1.pictures[0]).pixels());
  EXPECT_EQ(p2.output->host_data(),
            jpeg_reference_decode(seq2.pictures[0]).pixels());
}

}  // namespace
}  // namespace cms::apps
