// Tests for the OS-loaded shared-memory interval table (the paper's third
// buffer-identification alternative).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "mem/interval_table.hpp"

namespace cms::mem {
namespace {

TEST(IntervalTable, LookupInsideAndOutside) {
  IntervalTable t;
  ASSERT_TRUE(t.add(0x1000, 0x100, 7));
  EXPECT_EQ(t.lookup(0x1000), std::optional<BufferId>(7));
  EXPECT_EQ(t.lookup(0x10FF), std::optional<BufferId>(7));
  EXPECT_EQ(t.lookup(0x1100), std::nullopt);
  EXPECT_EQ(t.lookup(0x0FFF), std::nullopt);
}

TEST(IntervalTable, RejectsOverlap) {
  IntervalTable t;
  ASSERT_TRUE(t.add(0x1000, 0x100, 1));
  EXPECT_FALSE(t.add(0x10FF, 0x10, 2));   // overlaps tail
  EXPECT_FALSE(t.add(0x0FFF, 0x10, 3));   // overlaps head
  EXPECT_FALSE(t.add(0x1040, 0x10, 4));   // fully inside
  EXPECT_TRUE(t.add(0x1100, 0x10, 5));    // adjacent is fine
  EXPECT_TRUE(t.add(0x0FF0, 0x10, 6));    // adjacent below is fine
  EXPECT_EQ(t.size(), 3u);
}

TEST(IntervalTable, RejectsEmpty) {
  IntervalTable t;
  EXPECT_FALSE(t.add(0x1000, 0, 1));
}

TEST(IntervalTable, RemoveByBuffer) {
  IntervalTable t;
  t.add(0x1000, 0x100, 1);
  t.add(0x2000, 0x100, 2);
  t.remove(1);
  EXPECT_EQ(t.lookup(0x1000), std::nullopt);
  EXPECT_EQ(t.lookup(0x2000), std::optional<BufferId>(2));
}

TEST(IntervalTable, KeptSortedByBase) {
  IntervalTable t;
  t.add(0x3000, 0x10, 3);
  t.add(0x1000, 0x10, 1);
  t.add(0x2000, 0x10, 2);
  const auto& ivs = t.intervals();
  ASSERT_EQ(ivs.size(), 3u);
  EXPECT_LT(ivs[0].base, ivs[1].base);
  EXPECT_LT(ivs[1].base, ivs[2].base);
}

// Property: binary-search lookup agrees with a naive linear scan for many
// random non-overlapping interval sets.
class IntervalLookupProperty : public ::testing::TestWithParam<int> {};

TEST_P(IntervalLookupProperty, MatchesNaiveScan) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 977 + 13);
  IntervalTable t;
  std::vector<MemInterval> naive;
  Addr base = 0;
  for (int i = 0; i < 40; ++i) {
    base += 1 + rng.below(512);
    const std::uint64_t size = 1 + rng.below(256);
    if (t.add(base, size, static_cast<BufferId>(i))) {
      naive.push_back({base, size, static_cast<BufferId>(i)});
    }
    base += size;
  }
  for (int q = 0; q < 2000; ++q) {
    const Addr a = rng.below(base + 512);
    std::optional<BufferId> expect;
    for (const auto& iv : naive)
      if (iv.contains(a)) expect = iv.buffer;
    EXPECT_EQ(t.lookup(a), expect) << "addr " << a;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalLookupProperty, ::testing::Range(0, 6));

}  // namespace
}  // namespace cms::mem
