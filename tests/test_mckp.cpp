// Tests for the MCKP solvers (the paper's ILP formulation).
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "opt/mckp.hpp"

// GCC 12 emits a bogus -Wrestrict on inlined std::string concatenation in
// random_instance under -O2 (gcc PR105329); CI builds with -Werror.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wrestrict"
#endif

namespace cms::opt {
namespace {

std::vector<MckpGroup> random_instance(std::uint64_t seed, int groups,
                                       int options) {
  Rng rng(seed);
  std::vector<MckpGroup> out;
  for (int g = 0; g < groups; ++g) {
    MckpGroup grp;
    grp.name = "g" + std::to_string(g);
    double cost = 1000.0 + rng.next_double() * 1000.0;
    std::uint32_t size = 1;
    for (int i = 0; i < options; ++i) {
      grp.items.push_back({size, cost});
      size += 1 + static_cast<std::uint32_t>(rng.below(4));
      cost *= 0.3 + rng.next_double() * 0.6;  // diminishing misses
    }
    out.push_back(std::move(grp));
  }
  return out;
}

TEST(Mckp, TrivialSingleGroup) {
  std::vector<MckpGroup> groups = {{"t", {{1, 100.0}, {4, 10.0}, {8, 1.0}}}};
  const MckpSolution s = solve_mckp_dp(groups, 8);
  ASSERT_TRUE(s.feasible);
  EXPECT_EQ(s.choice[0], 2);
  EXPECT_DOUBLE_EQ(s.total_cost, 1.0);
}

TEST(Mckp, CapacityForcesCompromise) {
  std::vector<MckpGroup> groups = {{"a", {{1, 100.0}, {8, 0.0}}},
                                   {"b", {{1, 50.0}, {8, 0.0}}}};
  const MckpSolution s = solve_mckp_dp(groups, 9);
  ASSERT_TRUE(s.feasible);
  // Only one group can get 8 sets; it should be "a" (larger gain).
  EXPECT_DOUBLE_EQ(s.total_cost, 50.0);
  EXPECT_EQ(s.total_size, 9u);
}

TEST(Mckp, InfeasibleWhenMinimumsExceedCapacity) {
  std::vector<MckpGroup> groups = {{"a", {{4, 1.0}}}, {"b", {{4, 1.0}}}};
  EXPECT_FALSE(solve_mckp_dp(groups, 7).feasible);
  EXPECT_FALSE(solve_mckp_branch_bound(groups, 7).feasible);
  EXPECT_FALSE(solve_mckp_greedy(groups, 7).feasible);
  EXPECT_FALSE(solve_mckp_brute(groups, 7).feasible);
}

TEST(Mckp, EmptyInstanceIsFeasible) {
  const MckpSolution s = solve_mckp_dp({}, 10);
  EXPECT_TRUE(s.feasible);
  EXPECT_EQ(s.total_cost, 0.0);
  EXPECT_EQ(s.total_size, 0u);
}

TEST(Mckp, UnusedCapacityAllowed) {
  std::vector<MckpGroup> groups = {{"a", {{1, 5.0}, {2, 5.0}}}};
  const MckpSolution s = solve_mckp_dp(groups, 100);
  ASSERT_TRUE(s.feasible);
  EXPECT_DOUBLE_EQ(s.total_cost, 5.0);
}

// ---- Cross-validation properties over random instances ----

class MckpCrossCheck : public ::testing::TestWithParam<int> {};

TEST_P(MckpCrossCheck, DpMatchesBruteForce) {
  const auto groups = random_instance(static_cast<std::uint64_t>(GetParam()), 5, 4);
  for (const std::uint32_t cap : {8u, 16u, 32u, 64u}) {
    const MckpSolution dp = solve_mckp_dp(groups, cap);
    const MckpSolution brute = solve_mckp_brute(groups, cap);
    ASSERT_EQ(dp.feasible, brute.feasible) << "cap " << cap;
    if (dp.feasible) {
      EXPECT_NEAR(dp.total_cost, brute.total_cost, 1e-9) << "cap " << cap;
      EXPECT_LE(dp.total_size, cap);
    }
  }
}

TEST_P(MckpCrossCheck, BranchBoundMatchesDp) {
  const auto groups = random_instance(static_cast<std::uint64_t>(GetParam()) + 100, 8, 5);
  for (const std::uint32_t cap : {16u, 40u, 100u}) {
    const MckpSolution dp = solve_mckp_dp(groups, cap);
    const MckpSolution bb = solve_mckp_branch_bound(groups, cap);
    ASSERT_EQ(dp.feasible, bb.feasible);
    if (dp.feasible) {
      EXPECT_NEAR(dp.total_cost, bb.total_cost, 1e-9);
    }
  }
}

TEST_P(MckpCrossCheck, GreedyIsFeasibleAndNotBetterThanOptimal) {
  const auto groups = random_instance(static_cast<std::uint64_t>(GetParam()) + 200, 10, 5);
  for (const std::uint32_t cap : {20u, 60u, 200u}) {
    const MckpSolution dp = solve_mckp_dp(groups, cap);
    const MckpSolution greedy = solve_mckp_greedy(groups, cap);
    if (!dp.feasible) continue;
    ASSERT_TRUE(greedy.feasible);
    EXPECT_LE(greedy.total_size, cap);
    EXPECT_GE(greedy.total_cost + 1e-9, dp.total_cost);
  }
}

TEST_P(MckpCrossCheck, SolutionSizeAccountingConsistent) {
  const auto groups = random_instance(static_cast<std::uint64_t>(GetParam()) + 300, 6, 4);
  const MckpSolution s = solve_mckp_dp(groups, 50);
  if (!s.feasible) return;
  double cost = 0;
  std::uint32_t size = 0;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    const auto& it = groups[g].items[static_cast<std::size_t>(s.choice[g])];
    cost += it.cost;
    size += it.size;
  }
  EXPECT_NEAR(cost, s.total_cost, 1e-9);
  EXPECT_EQ(size, s.total_size);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MckpCrossCheck, ::testing::Range(0, 10));

// ---- Dense-grid pruning (prune_mckp_items) ----

TEST(MckpPrune, RemovesDominatedKeepsKnees) {
  // Flat stretches and a non-monotone bump: only strict improvements
  // survive, in size order.
  std::vector<MckpItem> items = {{1, 100}, {2, 100}, {4, 50}, {8, 50},
                                 {16, 60}, {32, 10}};
  const std::size_t removed = prune_mckp_items(items);
  EXPECT_EQ(removed, 3u);
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[0].size, 1u);
  EXPECT_EQ(items[1].size, 4u);
  EXPECT_EQ(items[2].size, 32u);
}

TEST(MckpPrune, SmallestSizeAlwaysSurvives) {
  std::vector<MckpItem> items = {{4, 5.0}, {1, 5.0}, {2, 5.0}};
  prune_mckp_items(items);
  ASSERT_EQ(items.size(), 1u);
  EXPECT_EQ(items[0].size, 1u);  // feasibility anchor
}

TEST(MckpPrune, PreservesDpOptimumOnRandomDenseInstances) {
  // Dominance pruning is exact: the DP on the pruned instance must reach
  // the same optimal cost as brute force on the original.
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    Rng rng(seed);
    std::vector<MckpGroup> original;
    for (int g = 0; g < 4; ++g) {
      MckpGroup grp;
      grp.name = "g" + std::to_string(g);
      double cost = 1000.0 + rng.next_double() * 1000.0;
      for (std::uint32_t size = 1; size <= 24; ++size) {
        grp.items.push_back({size, cost});
        if (rng.chance(0.25)) cost *= 0.4 + rng.next_double() * 0.5;
      }
      original.push_back(std::move(grp));
    }
    std::vector<MckpGroup> pruned = original;
    for (auto& grp : pruned) prune_mckp_items(grp.items);

    for (const std::uint32_t cap : {8u, 30u, 96u}) {
      const MckpSolution ref = solve_mckp_brute(original, cap);
      const MckpSolution got = solve_mckp_dp(pruned, cap);
      EXPECT_EQ(ref.feasible, got.feasible) << "seed " << seed;
      if (ref.feasible) {
        EXPECT_NEAR(ref.total_cost, got.total_cost, 1e-9)
            << "seed " << seed << " cap " << cap;
      }
    }
  }
}

TEST(MckpPrune, CollinearThinningDropsStraightRunsKeepsKnees) {
  // A perfectly linear ramp collapses to its endpoints...
  std::vector<MckpItem> line;
  for (std::uint32_t s = 1; s <= 32; ++s)
    line.push_back({s, 1000.0 - 10.0 * s});
  prune_mckp_items(line, 0.01);
  EXPECT_EQ(line.size(), 2u);

  // ...while a sharp knee survives any reasonable tolerance.
  std::vector<MckpItem> knee = {{1, 1000}, {2, 990}, {3, 980}, {4, 100},
                                {5, 90},   {6, 80}};
  prune_mckp_items(knee, 0.01);
  bool kept_knee = false;
  for (const auto& it : knee) kept_knee = kept_knee || it.size == 4;
  EXPECT_TRUE(kept_knee);
}

TEST(MckpPrune, ThinningErrorBoundHoldsOnSmoothConvexCurves) {
  // The documented contract: every dropped point lies within
  // eps x (cost range) of the segment between its two KEPT neighbours.
  // A smooth convex curve is the adversarial case — greedy
  // next-point chord tests let the error compound well past the bound.
  std::vector<MckpItem> items;
  for (std::uint32_t s = 1; s <= 64; ++s) {
    const double d = 64.0 - static_cast<double>(s);
    items.push_back({s, d * d});
  }
  const std::vector<MckpItem> original = items;
  const double eps = 0.01;
  prune_mckp_items(items, eps);
  const double tol = eps * (original.front().cost - original.back().cost);

  for (const MckpItem& p : original) {
    // Kept neighbours around p.
    std::size_t hi = 0;
    while (items[hi].size < p.size) ++hi;
    if (items[hi].size == p.size) continue;  // p survived
    const MckpItem& a = items[hi - 1];
    const MckpItem& c = items[hi];
    const double t = static_cast<double>(p.size - a.size) /
                     static_cast<double>(c.size - a.size);
    const double interp = a.cost + t * (c.cost - a.cost);
    EXPECT_LE(std::abs(interp - p.cost), tol + 1e-9) << "size " << p.size;
  }
}

TEST(MckpPrune, ZeroEpsIsLossless) {
  std::vector<MckpItem> items;
  for (std::uint32_t s = 1; s <= 16; ++s)
    items.push_back({s, 100.0 - static_cast<double>(s)});
  prune_mckp_items(items, 0.0);
  EXPECT_EQ(items.size(), 16u);  // strictly decreasing: nothing dominated
}

}  // namespace
}  // namespace cms::opt
