// Tests for the MCKP solvers (the paper's ILP formulation).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "opt/mckp.hpp"

// GCC 12 emits a bogus -Wrestrict on inlined std::string concatenation in
// random_instance under -O2 (gcc PR105329); CI builds with -Werror.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wrestrict"
#endif

namespace cms::opt {
namespace {

std::vector<MckpGroup> random_instance(std::uint64_t seed, int groups,
                                       int options) {
  Rng rng(seed);
  std::vector<MckpGroup> out;
  for (int g = 0; g < groups; ++g) {
    MckpGroup grp;
    grp.name = "g" + std::to_string(g);
    double cost = 1000.0 + rng.next_double() * 1000.0;
    std::uint32_t size = 1;
    for (int i = 0; i < options; ++i) {
      grp.items.push_back({size, cost});
      size += 1 + static_cast<std::uint32_t>(rng.below(4));
      cost *= 0.3 + rng.next_double() * 0.6;  // diminishing misses
    }
    out.push_back(std::move(grp));
  }
  return out;
}

TEST(Mckp, TrivialSingleGroup) {
  std::vector<MckpGroup> groups = {{"t", {{1, 100.0}, {4, 10.0}, {8, 1.0}}}};
  const MckpSolution s = solve_mckp_dp(groups, 8);
  ASSERT_TRUE(s.feasible);
  EXPECT_EQ(s.choice[0], 2);
  EXPECT_DOUBLE_EQ(s.total_cost, 1.0);
}

TEST(Mckp, CapacityForcesCompromise) {
  std::vector<MckpGroup> groups = {{"a", {{1, 100.0}, {8, 0.0}}},
                                   {"b", {{1, 50.0}, {8, 0.0}}}};
  const MckpSolution s = solve_mckp_dp(groups, 9);
  ASSERT_TRUE(s.feasible);
  // Only one group can get 8 sets; it should be "a" (larger gain).
  EXPECT_DOUBLE_EQ(s.total_cost, 50.0);
  EXPECT_EQ(s.total_size, 9u);
}

TEST(Mckp, InfeasibleWhenMinimumsExceedCapacity) {
  std::vector<MckpGroup> groups = {{"a", {{4, 1.0}}}, {"b", {{4, 1.0}}}};
  EXPECT_FALSE(solve_mckp_dp(groups, 7).feasible);
  EXPECT_FALSE(solve_mckp_branch_bound(groups, 7).feasible);
  EXPECT_FALSE(solve_mckp_greedy(groups, 7).feasible);
  EXPECT_FALSE(solve_mckp_brute(groups, 7).feasible);
}

TEST(Mckp, EmptyInstanceIsFeasible) {
  const MckpSolution s = solve_mckp_dp({}, 10);
  EXPECT_TRUE(s.feasible);
  EXPECT_EQ(s.total_cost, 0.0);
  EXPECT_EQ(s.total_size, 0u);
}

TEST(Mckp, UnusedCapacityAllowed) {
  std::vector<MckpGroup> groups = {{"a", {{1, 5.0}, {2, 5.0}}}};
  const MckpSolution s = solve_mckp_dp(groups, 100);
  ASSERT_TRUE(s.feasible);
  EXPECT_DOUBLE_EQ(s.total_cost, 5.0);
}

// ---- Cross-validation properties over random instances ----

class MckpCrossCheck : public ::testing::TestWithParam<int> {};

TEST_P(MckpCrossCheck, DpMatchesBruteForce) {
  const auto groups = random_instance(static_cast<std::uint64_t>(GetParam()), 5, 4);
  for (const std::uint32_t cap : {8u, 16u, 32u, 64u}) {
    const MckpSolution dp = solve_mckp_dp(groups, cap);
    const MckpSolution brute = solve_mckp_brute(groups, cap);
    ASSERT_EQ(dp.feasible, brute.feasible) << "cap " << cap;
    if (dp.feasible) {
      EXPECT_NEAR(dp.total_cost, brute.total_cost, 1e-9) << "cap " << cap;
      EXPECT_LE(dp.total_size, cap);
    }
  }
}

TEST_P(MckpCrossCheck, BranchBoundMatchesDp) {
  const auto groups = random_instance(static_cast<std::uint64_t>(GetParam()) + 100, 8, 5);
  for (const std::uint32_t cap : {16u, 40u, 100u}) {
    const MckpSolution dp = solve_mckp_dp(groups, cap);
    const MckpSolution bb = solve_mckp_branch_bound(groups, cap);
    ASSERT_EQ(dp.feasible, bb.feasible);
    if (dp.feasible) {
      EXPECT_NEAR(dp.total_cost, bb.total_cost, 1e-9);
    }
  }
}

TEST_P(MckpCrossCheck, GreedyIsFeasibleAndNotBetterThanOptimal) {
  const auto groups = random_instance(static_cast<std::uint64_t>(GetParam()) + 200, 10, 5);
  for (const std::uint32_t cap : {20u, 60u, 200u}) {
    const MckpSolution dp = solve_mckp_dp(groups, cap);
    const MckpSolution greedy = solve_mckp_greedy(groups, cap);
    if (!dp.feasible) continue;
    ASSERT_TRUE(greedy.feasible);
    EXPECT_LE(greedy.total_size, cap);
    EXPECT_GE(greedy.total_cost + 1e-9, dp.total_cost);
  }
}

TEST_P(MckpCrossCheck, SolutionSizeAccountingConsistent) {
  const auto groups = random_instance(static_cast<std::uint64_t>(GetParam()) + 300, 6, 4);
  const MckpSolution s = solve_mckp_dp(groups, 50);
  if (!s.feasible) return;
  double cost = 0;
  std::uint32_t size = 0;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    const auto& it = groups[g].items[static_cast<std::size_t>(s.choice[g])];
    cost += it.cost;
    size += it.size;
  }
  EXPECT_NEAR(cost, s.total_cost, 1e-9);
  EXPECT_EQ(size, s.total_size);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MckpCrossCheck, ::testing::Range(0, 10));

}  // namespace
}  // namespace cms::opt
