// Tests for the partitioned L2 — including the central compositionality
// invariant: with disjoint partitions, one client's accesses can never
// evict another client's lines.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "mem/partitioned_cache.hpp"

namespace cms::mem {
namespace {

CacheConfig cfg64() {
  CacheConfig cfg;
  cfg.line_bytes = 64;
  cfg.ways = 4;
  cfg.size_bytes = 64 * 4 * 64;  // 64 sets
  return cfg;
}

TEST(PartitionedCache, SharedModeUsesConventionalIndex) {
  PartitionedCache l2(cfg64());
  l2.set_partitioning_enabled(false);
  const auto r = l2.access(1, 0x40 * 65, AccessType::kRead);
  EXPECT_EQ(r.set_index, 65u % 64u);
}

TEST(PartitionedCache, PartitionedModeTranslatesIndex) {
  PartitionedCache l2(cfg64());
  l2.partition_table().assign(ClientId::task(1), {32, 4});
  l2.set_partitioning_enabled(true);
  const auto r = l2.access(1, 0x40 * 65, AccessType::kRead);
  EXPECT_GE(r.set_index, 32u);
  EXPECT_LT(r.set_index, 36u);
}

TEST(PartitionedCache, ClassifiesBufferAddressesByIntervalTable) {
  PartitionedCache l2(cfg64());
  l2.interval_table().add(0x8000, 0x1000, 5);
  EXPECT_EQ(l2.classify(1, 0x8000), ClientId::buffer(5));
  EXPECT_EQ(l2.classify(1, 0x7FFF), ClientId::task(1));
  const auto r = l2.access(1, 0x8000, AccessType::kRead);
  EXPECT_EQ(r.client, ClientId::buffer(5));
  EXPECT_EQ(l2.client_stats(ClientId::buffer(5)).accesses, 1u);
  EXPECT_EQ(l2.client_stats(ClientId::task(1)).accesses, 0u);
}

TEST(PartitionedCache, PerClientStatsInSharedMode) {
  // Attribution works in both modes (Figure 2 plots per-task misses for
  // the shared baseline as well).
  PartitionedCache l2(cfg64());
  l2.set_partitioning_enabled(false);
  l2.access(1, 0x0, AccessType::kRead);
  l2.access(2, 0x10000, AccessType::kRead);
  l2.access(2, 0x10000, AccessType::kRead);
  EXPECT_EQ(l2.client_stats(ClientId::task(1)).misses, 1u);
  EXPECT_EQ(l2.client_stats(ClientId::task(2)).accesses, 2u);
  EXPECT_EQ(l2.client_stats(ClientId::task(2)).hits, 1u);
}

TEST(PartitionedCache, AllClientStatsSorted) {
  PartitionedCache l2(cfg64());
  l2.access(3, 0x0, AccessType::kRead);
  l2.access(1, 0x40, AccessType::kRead);
  l2.interval_table().add(0x8000, 64, 9);
  l2.access(1, 0x8000, AccessType::kRead);
  const auto stats = l2.all_client_stats();
  ASSERT_EQ(stats.size(), 3u);
  EXPECT_TRUE(stats[0].first < stats[1].first);
  EXPECT_TRUE(stats[1].first < stats[2].first);
}

// ---- The compositionality invariant (the heart of the paper) ----
//
// With disjoint partitions, a client's miss sequence must be completely
// independent of what other clients do. We verify this two ways:
//  1. no inter-client evictions are ever recorded;
//  2. the per-client miss count with co-runners equals the miss count of
//     a solo run of the same trace.

struct TraceEntry {
  TaskId task;
  Addr addr;
};

std::vector<TraceEntry> random_trace(std::uint64_t seed, int tasks, int len) {
  Rng rng(seed);
  std::vector<TraceEntry> trace;
  trace.reserve(static_cast<std::size_t>(len));
  for (int i = 0; i < len; ++i) {
    const auto task = static_cast<TaskId>(rng.below(static_cast<std::uint64_t>(tasks)));
    // Each task works in its own 32KB range (bigger than its partition).
    const Addr addr = static_cast<Addr>(task) * 0x100000 + (rng.below(512) * 64);
    trace.push_back({task, addr});
  }
  return trace;
}

class IsolationProperty : public ::testing::TestWithParam<int> {};

TEST_P(IsolationProperty, PartitionedClientsNeverInterfere) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  constexpr int kTasks = 4;
  const auto trace = random_trace(seed, kTasks, 20000);

  // Combined run: all tasks interleaved on one partitioned cache.
  PartitionedCache combined(cfg64());
  for (int t = 0; t < kTasks; ++t)
    combined.partition_table().assign(ClientId::task(t),
                                      {static_cast<std::uint32_t>(t) * 16, 16});
  combined.set_partitioning_enabled(true);
  for (const auto& e : trace) combined.access(e.task, e.addr, AccessType::kRead);

  for (int t = 0; t < kTasks; ++t) {
    EXPECT_EQ(combined.client_stats(ClientId::task(t)).evictions_by_other, 0u);
  }

  // Solo runs: each task alone, same partition layout.
  for (int t = 0; t < kTasks; ++t) {
    PartitionedCache solo(cfg64());
    for (int u = 0; u < kTasks; ++u)
      solo.partition_table().assign(ClientId::task(u),
                                    {static_cast<std::uint32_t>(u) * 16, 16});
    solo.set_partitioning_enabled(true);
    for (const auto& e : trace)
      if (e.task == t) solo.access(e.task, e.addr, AccessType::kRead);
    EXPECT_EQ(solo.client_stats(ClientId::task(t)).misses,
              combined.client_stats(ClientId::task(t)).misses)
        << "task " << t << " misses depend on co-runners";
  }
}

TEST_P(IsolationProperty, SharedModeDoesInterfere) {
  // Sanity check of the experiment itself: in shared mode the same traces
  // do interfere (otherwise the isolation test proves nothing).
  const auto seed = static_cast<std::uint64_t>(GetParam());
  constexpr int kTasks = 4;
  const auto trace = random_trace(seed, kTasks, 20000);
  PartitionedCache shared(cfg64());
  shared.set_partitioning_enabled(false);
  for (const auto& e : trace) shared.access(e.task, e.addr, AccessType::kRead);
  std::uint64_t inter = 0;
  for (int t = 0; t < kTasks; ++t)
    inter += shared.client_stats(ClientId::task(t)).evictions_by_other;
  EXPECT_GT(inter, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IsolationProperty, ::testing::Range(0, 6));

TEST(PartitionedCache, BufferPartitionIsolatesFifoTraffic) {
  // A FIFO-like circular buffer with a partition covering its footprint
  // only cold-misses, regardless of a streaming co-runner.
  PartitionedCache l2(cfg64());
  const Addr fifo_base = 0x40000;
  const std::uint64_t fifo_bytes = 16 * 64;  // 16 lines -> 4 sets @ 4 ways
  l2.interval_table().add(fifo_base, fifo_bytes, 1);
  l2.partition_table().assign(ClientId::buffer(1), {0, 4});
  l2.partition_table().assign(ClientId::task(0), {4, 4});
  l2.set_partitioning_enabled(true);

  Rng rng(3);
  for (int round = 0; round < 200; ++round) {
    // FIFO wraps through its 16 lines.
    l2.access(0, fifo_base + (round % 16) * 64, AccessType::kWrite);
    // Streaming co-runner (task 0) touches new lines forever.
    l2.access(0, 0x1000000 + static_cast<Addr>(round) * 64, AccessType::kRead);
  }
  const CacheStats& fifo = l2.client_stats(ClientId::buffer(1));
  EXPECT_EQ(fifo.misses, 16u);  // cold only
  EXPECT_EQ(fifo.cold_misses, 16u);
}

}  // namespace
}  // namespace cms::mem
