// Tests for the Canny pipeline and its reference oracle.
#include <gtest/gtest.h>

#include "apps/canny/canny_kpn.hpp"
#include "sim/engine.hpp"
#include "sim/os.hpp"
#include "sim/platform.hpp"

namespace cms::apps {
namespace {

sim::SimResults run_net(kpn::Network& net, std::uint32_t procs = 2) {
  sim::PlatformConfig pc;
  pc.hier.num_procs = procs;
  pc.hier.l2.size_bytes = 64 * 1024;
  sim::Platform platform(pc);
  for (const auto& b : net.buffers())
    platform.hierarchy().l2().interval_table().add(b.base, b.footprint, b.id);
  sim::Os os(sim::SchedPolicy::kMigrating, procs);
  sim::TimingEngine engine(platform, os, net.tasks());
  return engine.run();
}

TEST(CannyReference, OutputIsBinary) {
  const Image out = canny_reference(testimg::blocks(64, 48, 1));
  for (const auto p : out.pixels()) EXPECT_TRUE(p == 0 || p == 255);
}

TEST(CannyReference, FlatImageHasNoEdges) {
  const Image flat(64, 48, 128);
  const Image out = canny_reference(flat);
  for (const auto p : out.pixels()) EXPECT_EQ(p, 0);
}

TEST(CannyReference, StepEdgeDetected) {
  Image img(64, 48, 20);
  for (int y = 0; y < 48; ++y)
    for (int x = 32; x < 64; ++x) img.set(x, y, 220);
  const Image out = canny_reference(img);
  // A vertical edge near x=32 must be marked on interior rows.
  bool found = false;
  for (int x = 28; x < 36; ++x) found |= out.at(x, 24) == 255;
  EXPECT_TRUE(found);
}

TEST(CannyKpn, PipelineMatchesReferenceExactly) {
  const std::vector<Image> frames = {testimg::blocks(48, 32, 91)};
  kpn::Network net;
  const CannyPipeline pipe = add_canny(net, frames);
  const sim::SimResults res = run_net(net);
  EXPECT_FALSE(res.deadlocked);
  EXPECT_TRUE(net.all_tasks_done());

  const Image want = canny_reference(frames[0]);
  EXPECT_EQ(pipe.output->host_data(), want.pixels());
}

TEST(CannyKpn, MultiFrameLeavesLastResult) {
  const std::vector<Image> frames = {testimg::blocks(48, 32, 92),
                                     testimg::blocks(48, 32, 93),
                                     testimg::gradient(48, 32, 94)};
  kpn::Network net;
  const CannyPipeline pipe = add_canny(net, frames);
  const sim::SimResults res = run_net(net);
  EXPECT_FALSE(res.deadlocked);
  EXPECT_EQ(pipe.output->host_data(), canny_reference(frames.back()).pixels());
}

TEST(CannyKpn, SevenTasksWithPaperNames) {
  kpn::Network net;
  add_canny(net, {testimg::blocks(16, 16, 1)});
  for (const char* name : {"FrCanny", "LowPass", "HorizSobel", "VertSobel",
                           "HorizNMS", "VertNMS", "MaxTreshold"})
    EXPECT_NE(net.find_process(name), nullptr) << name;
  EXPECT_EQ(net.processes().size(), 7u);
}

TEST(CannyKpn, ResultIndependentOfProcessorCount) {
  const std::vector<Image> frames = {testimg::blocks(48, 32, 95)};
  std::vector<std::uint8_t> out1, out4;
  {
    kpn::Network net;
    const CannyPipeline pipe = add_canny(net, frames);
    run_net(net, 1);
    out1 = pipe.output->host_data();
  }
  {
    kpn::Network net;
    const CannyPipeline pipe = add_canny(net, frames);
    run_net(net, 4);
    out4 = pipe.output->host_data();
  }
  EXPECT_EQ(out1, out4);  // Kahn determinism
}

TEST(CannyKpn, AllStagesFire) {
  kpn::Network net;
  add_canny(net, {testimg::blocks(32, 24, 96)});
  const sim::SimResults res = run_net(net);
  for (const auto& t : res.tasks) EXPECT_GT(t.firings, 0u) << t.name;
}

}  // namespace
}  // namespace cms::apps
