// Tests for the fused multi-size replay kernel (opt/replay_kernel.hpp):
// bit-identity of every kernel variant — scalar, SSE4, AVX2 and the
// auto-dispatched one — against the per-size reference replay, over the
// built-in scenarios (LRU, counter-based kRandom, the dense 64-point
// grid) and at several campaign worker counts; synthetic captures pin
// the FIFO and write-through-no-allocate cache paths, the non-power-of-2
// set counts the Lemire fast-mod handles, and the trace-to-L2 line-size
// rescale; plus the runtime dispatch rules themselves.
#include <gtest/gtest.h>

#include <initializer_list>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/simd.hpp"
#include "core/scenario.hpp"
#include "opt/replay_kernel.hpp"
#include "opt/trace.hpp"

namespace cms::opt {
namespace {

// Every fused engine, including the auto dispatcher. Explicit SIMD
// requests degrade to scalar on hosts without the ISA, so the list is
// valid (and the identity checks meaningful) on any machine.
const ReplayKernel kFusedKernels[] = {
    ReplayKernel::kScalar, ReplayKernel::kSse4, ReplayKernel::kAvx2,
    ReplayKernel::kAuto};

// ---- built-in scenarios: fused engines vs the per-size reference ----

MissProfile persize_reference(const core::Experiment& exp,
                              const std::vector<CaptureRun>& captures) {
  const auto& hier = exp.config().platform.hier;
  return replay_profile(exp.replay_jobs(captures), hier.l2, hier.l2_seed(),
                        miss_surcharge(hier));
}

MissProfile fused_profile(const core::Experiment& exp,
                          const std::vector<CaptureRun>& captures,
                          ReplayKernel kernel) {
  const auto& hier = exp.config().platform.hier;
  return replay_profile_multi(exp.multi_replay_jobs(captures), hier.l2,
                              hier.l2_seed(), miss_surcharge(hier), kernel);
}

class ReplayKernelScenario : public ::testing::TestWithParam<const char*> {};

TEST_P(ReplayKernelScenario, EveryKernelMatchesPerSizeReference) {
  const core::Experiment exp = core::scenarios().make_experiment(
      GetParam(), 1, core::ProfilerMode::kTraceReplay);
  const std::vector<CaptureRun> captures = exp.capture_runs();
  const MissProfile ref = persize_reference(exp, captures);
  for (const ReplayKernel k : kFusedKernels)
    EXPECT_TRUE(ref.identical(fused_profile(exp, captures, k)))
        << "kernel " << to_string(k) << " (resolved "
        << to_string(resolve_replay_kernel(k)) << ")";
}

INSTANTIATE_TEST_SUITE_P(
    BuiltIns, ReplayKernelScenario,
    ::testing::Values("jpeg-canny-tiny", "mpeg2-tiny", "mpeg2-tiny-rand",
                      "jpeg-canny-dense"),
    [](const ::testing::TestParamInfo<const char*>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// The Experiment-level path: profile() routed through the fused kernel
// must be worker-count invariant (the campaign shards per stream, the
// fold is serial) and match the per-size engine at every count.
TEST(ReplayKernelExperiment, WorkerCountAndKernelInvariant) {
  for (const char* name : {"mpeg2-tiny-rand", "jpeg-canny-dense"}) {
    const MissProfile ref =
        core::scenarios()
            .make_experiment(name, 1, core::ProfilerMode::kTraceReplay,
                             nullptr, ReplayKernel::kPerSize)
            .profile();
    for (const unsigned jobs : {1u, 2u, 8u}) {
      const core::Experiment exp = core::scenarios().make_experiment(
          name, jobs, core::ProfilerMode::kTraceReplay, nullptr,
          ReplayKernel::kAuto);
      EXPECT_TRUE(ref.identical(exp.profile()))
          << name << " auto jobs=" << jobs;
    }
    const core::Experiment scalar2 = core::scenarios().make_experiment(
        name, 2, core::ProfilerMode::kTraceReplay, nullptr,
        ReplayKernel::kScalar);
    EXPECT_TRUE(ref.identical(scalar2.profile())) << name << " scalar jobs=2";
  }
}

// ---- synthetic captures: cache paths the built-ins do not pin ----

constexpr Cycle kSurcharge = 25;
constexpr std::uint64_t kSeed = 0xC0FFEEu ^ 42u;

/// Deterministic LCG-driven stream: reads and (optionally) writes plus
/// occasional L1-writeback drains over a line span larger than any test
/// cache, issuer drawn per event from `issuers` to exercise the task-slot
/// cache (ids absent from the capture's task table land in the trash
/// slot on both engines).
ClientTrace synth_stream(mem::ClientId client, std::uint64_t seed,
                         std::uint64_t events, std::uint64_t line_span,
                         const std::vector<TaskId>& issuers) {
  ClientTrace t(client);
  std::uint64_t x = seed;
  for (std::uint64_t i = 0; i < events; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    const std::uint64_t line = (x >> 33) % line_span;
    const AccessType type =
        ((x >> 13) & 3) == 0 ? AccessType::kWrite : AccessType::kRead;
    const bool writeback = ((x >> 21) & 15) == 0;
    t.append(line, type, writeback, issuers[(x >> 5) % issuers.size()]);
  }
  return t;
}

CaptureRun synth_capture(std::uint32_t line_bytes = 64) {
  CaptureRun c;
  c.trace.line_bytes = line_bytes;
  c.trace.streams.push_back(
      synth_stream(mem::ClientId::task(0), 11, 3000, 640, {0}));
  c.trace.streams.push_back(
      synth_stream(mem::ClientId::task(1), 22, 2500, 512, {1}));
  // A shared buffer stream with interleaved issuers; id 99 is not in the
  // task table, so its demand misses hit the trash slot.
  c.trace.streams.push_back(
      synth_stream(mem::ClientId::buffer(7), 33, 2000, 320, {0, 1, 99}));
  c.tasks = {{0, "t0", 1000, 5000, 800}, {1, "t1", 900, 4000, 700}};
  return c;
}

/// Uniform isolation plan: every stream gets `client_sets` exclusive
/// sets out of a 64-set virtual total (the conventional-index modulus).
std::shared_ptr<const PartitionPlan> synth_plan(const CaptureRun& c,
                                                std::uint32_t client_sets) {
  auto plan = std::make_shared<PartitionPlan>();
  plan->total_sets = 64;
  std::uint32_t base = 0;
  for (const ClientTrace& s : c.trace.streams) {
    PlanEntry e;
    e.client = s.client();
    e.name = s.client().to_string();
    e.is_task = !s.client().is_buffer();
    e.sets = client_sets;
    e.partition = {base, client_sets};
    base += client_sets;
    plan->entries.push_back(std::move(e));
  }
  plan->used_sets = base;
  plan->feasible = true;
  return plan;
}

// Non-power-of-2 sizes exercise the Lemire fast-mod lanes; 1 pins the
// degenerate d=1 geometry.
const std::vector<std::uint32_t> kSynthSizes = {1, 2, 3, 5, 8};

MissProfile synth_reference(const CaptureRun& c, const mem::CacheConfig& l2) {
  std::vector<ProfileFragment> frags;
  for (std::size_t i = 0; i < kSynthSizes.size(); ++i)
    frags.push_back(replay_fragment(c, *synth_plan(c, kSynthSizes[i]), l2,
                                    kSeed, kSynthSizes[i], i, kSurcharge));
  return fold_fragments(std::move(frags));
}

MissProfile synth_fused(const CaptureRun& c, const mem::CacheConfig& l2,
                        ReplayKernel kernel) {
  std::vector<ReplayGridPoint> points;
  for (std::size_t i = 0; i < kSynthSizes.size(); ++i)
    points.push_back({synth_plan(c, kSynthSizes[i]), kSynthSizes[i], i});
  MultiReplay mr(c, std::move(points), l2, kSeed, kernel);
  for (std::size_t s = 0; s < mr.num_streams(); ++s) mr.replay_stream(s);
  return fold_fragments(mr.fragments(kSurcharge));
}

void expect_synth_identity(const CaptureRun& c, const mem::CacheConfig& l2) {
  const MissProfile ref = synth_reference(c, l2);
  for (const ReplayKernel k : kFusedKernels)
    EXPECT_TRUE(ref.identical(synth_fused(c, l2, k)))
        << "kernel " << to_string(k) << " l2 " << l2.to_string();
}

TEST(ReplayKernelSynthetic, FifoReplacement) {
  mem::CacheConfig l2;
  l2.size_bytes = 16 * 1024;
  l2.ways = 4;
  l2.replacement = mem::Replacement::kFifo;
  expect_synth_identity(synth_capture(), l2);
}

TEST(ReplayKernelSynthetic, WriteThroughNoAllocate) {
  mem::CacheConfig l2;
  l2.size_bytes = 16 * 1024;
  l2.ways = 4;
  l2.write_policy = mem::WritePolicy::kWriteThroughNoAllocate;
  expect_synth_identity(synth_capture(), l2);
}

// The trickiest interaction: a no-allocate write miss must count as a
// miss WITHOUT consuming a victim draw, or every later kRandom victim of
// that client shifts.
TEST(ReplayKernelSynthetic, RandomReplacementWithNoAllocate) {
  mem::CacheConfig l2;
  l2.size_bytes = 16 * 1024;
  l2.ways = 4;
  l2.replacement = mem::Replacement::kRandom;
  l2.write_policy = mem::WritePolicy::kWriteThroughNoAllocate;
  expect_synth_identity(synth_capture(), l2);
}

// Captures recorded at a different line size than the replay L2 rescale
// line indices on both engines identically.
TEST(ReplayKernelSynthetic, LineBytesRescale) {
  mem::CacheConfig l2;
  l2.size_bytes = 16 * 1024;
  l2.ways = 4;
  expect_synth_identity(synth_capture(/*line_bytes=*/128), l2);
}

TEST(ReplayKernelSynthetic, UnplannedClientThrows) {
  const CaptureRun c = synth_capture();
  auto plan = std::make_shared<PartitionPlan>(*synth_plan(c, 2));
  plan->entries.pop_back();  // drop the buffer stream's entry
  const mem::CacheConfig l2;
  std::vector<ReplayGridPoint> points = {{plan, 2, 0}};
  EXPECT_THROW(MultiReplay(c, points, l2, kSeed, ReplayKernel::kScalar),
               std::invalid_argument);
  EXPECT_THROW(replay_fragment(c, *plan, l2, kSeed, 2, 0, kSurcharge),
               std::invalid_argument);
}

// ---- runtime dispatch ----

TEST(ReplayKernelDispatch, ResolveRules) {
  // Fixed points: scalar and the legacy per-size engine resolve to
  // themselves regardless of the host.
  EXPECT_EQ(resolve_replay_kernel(ReplayKernel::kScalar),
            ReplayKernel::kScalar);
  EXPECT_EQ(resolve_replay_kernel(ReplayKernel::kPerSize),
            ReplayKernel::kPerSize);

  const bool avx2 = have_avx2_kernel() && common::simd_has(common::kSimdAvx2);
  const bool sse4 = have_sse4_kernel() &&
                    common::simd_has(common::kSimdSse41 | common::kSimdSse42);

  // Auto picks the widest available ISA.
  EXPECT_EQ(resolve_replay_kernel(ReplayKernel::kAuto),
            avx2 ? ReplayKernel::kAvx2
                 : sse4 ? ReplayKernel::kSse4 : ReplayKernel::kScalar);

  // Explicit SIMD requests degrade to scalar (never sideways to another
  // ISA) when the build or CPU lacks them.
  EXPECT_EQ(resolve_replay_kernel(ReplayKernel::kAvx2),
            avx2 ? ReplayKernel::kAvx2 : ReplayKernel::kScalar);
  EXPECT_EQ(resolve_replay_kernel(ReplayKernel::kSse4),
            sse4 ? ReplayKernel::kSse4 : ReplayKernel::kScalar);
}

TEST(ReplayKernelDispatch, KernelNames) {
  EXPECT_STREQ(to_string(ReplayKernel::kAuto), "auto");
  EXPECT_STREQ(to_string(ReplayKernel::kScalar), "scalar");
  EXPECT_STREQ(to_string(ReplayKernel::kSse4), "sse4");
  EXPECT_STREQ(to_string(ReplayKernel::kAvx2), "avx2");
  EXPECT_STREQ(to_string(ReplayKernel::kPerSize), "persize");
}

TEST(ReplayKernelDispatch, MultiReplayNeverRunsPerSize) {
  const CaptureRun c = synth_capture();
  std::vector<ReplayGridPoint> points = {{synth_plan(c, 2), 2, 0}};
  const MultiReplay mr(c, std::move(points), mem::CacheConfig(), kSeed,
                       ReplayKernel::kPerSize);
  EXPECT_EQ(mr.kernel(), ReplayKernel::kScalar);
}

}  // namespace
}  // namespace cms::opt
