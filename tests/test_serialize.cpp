// Tests for the byte-stream serialization layer (common/serialize.hpp):
// primitive round trips, bounds checking on malformed input, and the
// FNV-1a hash used for content addressing.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/serialize.hpp"

namespace cms::serialize {
namespace {

TEST(Serialize, VarintRoundTripsBoundaries) {
  const std::vector<std::uint64_t> values = {
      0,    1,    127,  128,        129,
      0x3FFF, 0x4000, 1ull << 32, std::numeric_limits<std::uint64_t>::max()};
  ByteWriter w;
  for (const auto v : values) w.varint(v);
  ByteReader rd(w.bytes());
  for (const auto v : values) EXPECT_EQ(rd.varint(), v);
  EXPECT_TRUE(rd.done());
}

TEST(Serialize, VarintEncodingIsMinimal) {
  ByteWriter w;
  w.varint(127);
  EXPECT_EQ(w.size(), 1u);
  w.varint(128);
  EXPECT_EQ(w.size(), 3u);  // 127 took 1 byte, 128 takes 2
}

TEST(Serialize, SignedVarintRoundTripsViaZigzag) {
  const std::vector<std::int64_t> values = {
      0, -1, 1, -2, 63, -64, 1 << 20, -(1 << 20),
      std::numeric_limits<std::int64_t>::min(),
      std::numeric_limits<std::int64_t>::max()};
  ByteWriter w;
  for (const auto v : values) w.svarint(v);
  ByteReader rd(w.bytes());
  for (const auto v : values) EXPECT_EQ(rd.svarint(), v);
  // Zigzag keeps small negatives small.
  EXPECT_EQ(zigzag(-1), 1u);
  EXPECT_EQ(zigzag(1), 2u);
  EXPECT_EQ(unzigzag(zigzag(-12345)), -12345);
}

TEST(Serialize, FixedWidthAndStringsRoundTrip) {
  ByteWriter w;
  w.u8(0xAB);
  w.fixed32(0xDEADBEEF);
  w.fixed64(0x0123456789ABCDEFull);
  w.str("hello");
  w.str("");  // empty string is legal
  ByteReader rd(w.bytes());
  EXPECT_EQ(rd.u8(), 0xAB);
  EXPECT_EQ(rd.fixed32(), 0xDEADBEEFu);
  EXPECT_EQ(rd.fixed64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(rd.str(), "hello");
  EXPECT_EQ(rd.str(), "");
  EXPECT_TRUE(rd.done());
}

TEST(Serialize, FixedWidthIsLittleEndianOnTheWire) {
  ByteWriter w;
  w.fixed32(0x11223344);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w.bytes()[0], 0x44);
  EXPECT_EQ(w.bytes()[3], 0x11);
}

TEST(Serialize, TruncatedReadsThrow) {
  ByteWriter w;
  w.fixed64(42);
  ByteReader rd(w.bytes().data(), 3, "unit-test");
  EXPECT_THROW(rd.fixed64(), std::runtime_error);

  // A varint whose continuation bit promises more bytes than exist.
  const std::vector<std::uint8_t> cut = {0x80};
  ByteReader rd2(cut);
  EXPECT_THROW(rd2.varint(), std::runtime_error);

  // A string whose declared length exceeds the stream.
  ByteWriter ws;
  ws.varint(100);  // claims 100 bytes follow
  ws.u8('x');
  ByteReader rd3(ws.bytes());
  EXPECT_THROW(rd3.str(), std::runtime_error);
}

TEST(Serialize, MalformedVarintThrows) {
  // 11 continuation bytes can encode nothing valid in 64 bits.
  const std::vector<std::uint8_t> evil(11, 0x80);
  ByteReader rd(evil);
  EXPECT_THROW(rd.varint(), std::runtime_error);
}

TEST(Serialize, ErrorsNameTheContext) {
  const std::vector<std::uint8_t> empty;
  ByteReader rd(empty.data(), 0, "traces/deadbeef.cmstrace");
  try {
    rd.u8();
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("traces/deadbeef.cmstrace"),
              std::string::npos);
  }
}

TEST(Serialize, Fnv1a64MatchesReferenceVectors) {
  EXPECT_EQ(fnv1a64(nullptr, 0), kFnvOffset);
  const std::uint8_t a = 'a';
  EXPECT_EQ(fnv1a64(&a, 1), 0xaf63dc4c8601ec8cull);
  const std::uint8_t foobar[] = {'f', 'o', 'o', 'b', 'a', 'r'};
  EXPECT_EQ(fnv1a64(foobar, 6), 0x85944171f73967e8ull);
}

// ---- Property/fuzz pass (deterministic seeds: failures reproduce) ----

TEST(SerializeFuzz, ReaderNeverOverrunsOnRandomBuffers) {
  // Arbitrary byte soup driven through arbitrary read sequences: every
  // call either returns a value or throws std::runtime_error — it never
  // reads past the end (pos() stays bounded) and never crashes.
  cms::Rng rng(0xBADF00Dull);
  for (int i = 0; i < 500; ++i) {
    std::vector<std::uint8_t> buf(rng.below(48));
    for (auto& b : buf) b = static_cast<std::uint8_t>(rng.next_u32());
    ByteReader rd(buf.data(), buf.size(), "fuzz");
    try {
      while (!rd.done()) {
        switch (rng.below(6)) {
          case 0: rd.u8(); break;
          case 1: rd.varint(); break;
          case 2: rd.svarint(); break;
          case 3: rd.fixed32(); break;
          case 4: rd.fixed64(); break;
          case 5: rd.str(); break;
        }
        ASSERT_LE(rd.pos(), buf.size());
      }
    } catch (const std::runtime_error&) {
      // Rejection is the correct outcome for malformed input.
    }
    EXPECT_LE(rd.pos(), buf.size());
  }
}

TEST(SerializeFuzz, RandomWriteSequencesRoundTripExactly) {
  // Property: whatever sequence of primitives is written, reading it back
  // in the same order reproduces every value and consumes every byte.
  cms::Rng rng(0x5EEDull);
  for (int i = 0; i < 200; ++i) {
    struct Op {
      int kind;
      std::uint64_t u;
      std::int64_t s;
      std::string str;
    };
    std::vector<Op> ops(1 + rng.below(20));
    ByteWriter w;
    for (auto& op : ops) {
      op.kind = static_cast<int>(rng.below(5));
      op.u = rng.next_u64() >> rng.below(64);
      op.s = static_cast<std::int64_t>(rng.next_u64()) >> rng.below(64);
      switch (op.kind) {
        case 0: w.u8(static_cast<std::uint8_t>(op.u)); break;
        case 1: w.varint(op.u); break;
        case 2: w.svarint(op.s); break;
        case 3: w.fixed64(op.u); break;
        case 4: {
          op.str.resize(rng.below(16));
          for (auto& c : op.str) c = static_cast<char>(rng.next_u32());
          w.str(op.str);
          break;
        }
      }
    }
    ByteReader rd(w.bytes());
    for (const auto& op : ops) {
      switch (op.kind) {
        case 0: EXPECT_EQ(rd.u8(), static_cast<std::uint8_t>(op.u)); break;
        case 1: EXPECT_EQ(rd.varint(), op.u); break;
        case 2: EXPECT_EQ(rd.svarint(), op.s); break;
        case 3: EXPECT_EQ(rd.fixed64(), op.u); break;
        case 4: EXPECT_EQ(rd.str(), op.str); break;
      }
    }
    EXPECT_TRUE(rd.done());
  }
}

TEST(SerializeFuzz, TruncatedPrefixesOfValidStreamsThrowOrStayInBounds) {
  // Every strict prefix of a valid stream, re-read with the same op
  // sequence, must end in a clean runtime_error (never an overrun).
  cms::Rng rng(0x71E44ull);
  for (int i = 0; i < 100; ++i) {
    ByteWriter w;
    const int n = 1 + static_cast<int>(rng.below(8));
    for (int k = 0; k < n; ++k) w.varint(rng.next_u64() >> rng.below(64));
    w.str("tail");
    const std::vector<std::uint8_t>& full = w.bytes();
    // below(size+1) includes the no-truncation case: the full stream must
    // round-trip, every strict prefix must throw.
    const auto cut = static_cast<std::size_t>(rng.below(full.size() + 1));
    ByteReader rd(full.data(), cut, "fuzz-prefix");
    bool threw = false;
    try {
      for (int k = 0; k < n; ++k) rd.varint();
      const std::string s = rd.str();
      EXPECT_EQ(s, "tail");  // only reachable when the cut spared it all
    } catch (const std::runtime_error&) {
      threw = true;
    }
    EXPECT_TRUE(threw || cut == full.size());
    EXPECT_LE(rd.pos(), cut);
  }
}

TEST(Serialize, WriterTakeMovesBufferOut) {
  ByteWriter w;
  w.str("payload");
  const std::vector<std::uint8_t> bytes = w.take();
  EXPECT_FALSE(bytes.empty());
  EXPECT_EQ(w.size(), 0u);
}

}  // namespace
}  // namespace cms::serialize
