// Tests for the byte-stream serialization layer (common/serialize.hpp):
// primitive round trips, bounds checking on malformed input, and the
// FNV-1a hash used for content addressing.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

#include "common/serialize.hpp"

namespace cms::serialize {
namespace {

TEST(Serialize, VarintRoundTripsBoundaries) {
  const std::vector<std::uint64_t> values = {
      0,    1,    127,  128,        129,
      0x3FFF, 0x4000, 1ull << 32, std::numeric_limits<std::uint64_t>::max()};
  ByteWriter w;
  for (const auto v : values) w.varint(v);
  ByteReader rd(w.bytes());
  for (const auto v : values) EXPECT_EQ(rd.varint(), v);
  EXPECT_TRUE(rd.done());
}

TEST(Serialize, VarintEncodingIsMinimal) {
  ByteWriter w;
  w.varint(127);
  EXPECT_EQ(w.size(), 1u);
  w.varint(128);
  EXPECT_EQ(w.size(), 3u);  // 127 took 1 byte, 128 takes 2
}

TEST(Serialize, SignedVarintRoundTripsViaZigzag) {
  const std::vector<std::int64_t> values = {
      0, -1, 1, -2, 63, -64, 1 << 20, -(1 << 20),
      std::numeric_limits<std::int64_t>::min(),
      std::numeric_limits<std::int64_t>::max()};
  ByteWriter w;
  for (const auto v : values) w.svarint(v);
  ByteReader rd(w.bytes());
  for (const auto v : values) EXPECT_EQ(rd.svarint(), v);
  // Zigzag keeps small negatives small.
  EXPECT_EQ(zigzag(-1), 1u);
  EXPECT_EQ(zigzag(1), 2u);
  EXPECT_EQ(unzigzag(zigzag(-12345)), -12345);
}

TEST(Serialize, FixedWidthAndStringsRoundTrip) {
  ByteWriter w;
  w.u8(0xAB);
  w.fixed32(0xDEADBEEF);
  w.fixed64(0x0123456789ABCDEFull);
  w.str("hello");
  w.str("");  // empty string is legal
  ByteReader rd(w.bytes());
  EXPECT_EQ(rd.u8(), 0xAB);
  EXPECT_EQ(rd.fixed32(), 0xDEADBEEFu);
  EXPECT_EQ(rd.fixed64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(rd.str(), "hello");
  EXPECT_EQ(rd.str(), "");
  EXPECT_TRUE(rd.done());
}

TEST(Serialize, FixedWidthIsLittleEndianOnTheWire) {
  ByteWriter w;
  w.fixed32(0x11223344);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w.bytes()[0], 0x44);
  EXPECT_EQ(w.bytes()[3], 0x11);
}

TEST(Serialize, TruncatedReadsThrow) {
  ByteWriter w;
  w.fixed64(42);
  ByteReader rd(w.bytes().data(), 3, "unit-test");
  EXPECT_THROW(rd.fixed64(), std::runtime_error);

  // A varint whose continuation bit promises more bytes than exist.
  const std::vector<std::uint8_t> cut = {0x80};
  ByteReader rd2(cut);
  EXPECT_THROW(rd2.varint(), std::runtime_error);

  // A string whose declared length exceeds the stream.
  ByteWriter ws;
  ws.varint(100);  // claims 100 bytes follow
  ws.u8('x');
  ByteReader rd3(ws.bytes());
  EXPECT_THROW(rd3.str(), std::runtime_error);
}

TEST(Serialize, MalformedVarintThrows) {
  // 11 continuation bytes can encode nothing valid in 64 bits.
  const std::vector<std::uint8_t> evil(11, 0x80);
  ByteReader rd(evil);
  EXPECT_THROW(rd.varint(), std::runtime_error);
}

TEST(Serialize, ErrorsNameTheContext) {
  const std::vector<std::uint8_t> empty;
  ByteReader rd(empty.data(), 0, "traces/deadbeef.cmstrace");
  try {
    rd.u8();
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("traces/deadbeef.cmstrace"),
              std::string::npos);
  }
}

TEST(Serialize, Fnv1a64MatchesReferenceVectors) {
  EXPECT_EQ(fnv1a64(nullptr, 0), kFnvOffset);
  const std::uint8_t a = 'a';
  EXPECT_EQ(fnv1a64(&a, 1), 0xaf63dc4c8601ec8cull);
  const std::uint8_t foobar[] = {'f', 'o', 'o', 'b', 'a', 'r'};
  EXPECT_EQ(fnv1a64(foobar, 6), 0x85944171f73967e8ull);
}

TEST(Serialize, WriterTakeMovesBufferOut) {
  ByteWriter w;
  w.str("payload");
  const std::vector<std::uint8_t> bytes = w.take();
  EXPECT_FALSE(bytes.empty());
  EXPECT_EQ(w.size(), 0u);
}

}  // namespace
}  // namespace cms::serialize
