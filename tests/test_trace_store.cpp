// Tests for the trace file format (opt/trace.hpp encode/save/load) and
// the content-addressed TraceStore (opt/trace_store.hpp): exact round
// trips, every failure path of the on-disk format (truncation, bad magic,
// future schema version, checksum mismatch — all std::runtime_error with
// the offending path), digest keying, and warm-starting Experiment
// profiling from the store.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/experiment.hpp"
#include "core/scenario.hpp"
#include "opt/trace.hpp"
#include "opt/trace_store.hpp"

namespace cms::opt {
namespace {

namespace fs = std::filesystem;

/// Fresh directory under the system temp dir, removed on destruction.
struct TempDir {
  fs::path path;
  TempDir() {
    static int counter = 0;
    path = fs::temp_directory_path() /
           ("cms-trace-test-" + std::to_string(::getpid()) + "-" +
            std::to_string(counter++));
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string file(const std::string& name) const {
    return (path / name).string();
  }
};

CaptureRun sample_capture() {
  CaptureRun c;
  c.trace.line_bytes = 64;
  ClientTrace t0(mem::ClientId::task(0));
  t0.append(100, AccessType::kRead, false, 0);
  t0.append(101, AccessType::kWrite, false, 0);
  t0.append(90, AccessType::kRead, true, 2);
  ClientTrace b3(mem::ClientId::buffer(3));
  for (std::uint64_t i = 0; i < 200; ++i)
    b3.append(0x4000 + i, AccessType::kWrite, false, 1);
  c.trace.streams.push_back(std::move(t0));
  c.trace.streams.push_back(std::move(b3));
  c.tasks.push_back({0, "producer", 1234, 5000, 700});
  c.tasks.push_back({2, "consumer", 4321, 6000, 800});
  c.scheduler_clients.push_back(mem::ClientId::buffer(9));
  return c;
}

void expect_identical(const CaptureRun& a, const CaptureRun& b) {
  EXPECT_EQ(a.trace.line_bytes, b.trace.line_bytes);
  ASSERT_EQ(a.trace.streams.size(), b.trace.streams.size());
  for (std::size_t i = 0; i < a.trace.streams.size(); ++i) {
    const ClientTrace& sa = a.trace.streams[i];
    const ClientTrace& sb = b.trace.streams[i];
    EXPECT_EQ(sa.client(), sb.client());
    EXPECT_EQ(sa.events(), sb.events());
    EXPECT_EQ(sa.encoded(), sb.encoded());
    // Decoded event streams agree too (not just the raw bytes).
    auto ra = sa.reader(), rb = sb.reader();
    TraceEvent ea, eb;
    while (ra.next(ea)) {
      ASSERT_TRUE(rb.next(eb));
      EXPECT_EQ(ea.line_index, eb.line_index);
      EXPECT_EQ(ea.type, eb.type);
      EXPECT_EQ(ea.l1_writeback, eb.l1_writeback);
      EXPECT_EQ(ea.task, eb.task);
    }
    EXPECT_FALSE(rb.next(eb));
  }
  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  for (std::size_t i = 0; i < a.tasks.size(); ++i) {
    EXPECT_EQ(a.tasks[i].id, b.tasks[i].id);
    EXPECT_EQ(a.tasks[i].name, b.tasks[i].name);
    EXPECT_EQ(a.tasks[i].instructions, b.tasks[i].instructions);
    EXPECT_EQ(a.tasks[i].compute_cycles, b.tasks[i].compute_cycles);
    EXPECT_EQ(a.tasks[i].mem_cycles, b.tasks[i].mem_cycles);
  }
  EXPECT_EQ(a.scheduler_clients, b.scheduler_clients);
}

/// EXPECT a runtime_error whose message mentions `needle`.
template <typename Fn>
void expect_error_mentioning(Fn&& fn, const std::string& needle) {
  try {
    fn();
    FAIL() << "expected std::runtime_error mentioning '" << needle << "'";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "message was: " << e.what();
  }
}

TEST(TraceFormat, EncodeDecodeRoundTripsExactly) {
  const CaptureRun original = sample_capture();
  const std::vector<std::uint8_t> bytes =
      encode_capture(original, "digest-123");
  std::string digest;
  const CaptureRun decoded =
      decode_capture(bytes.data(), bytes.size(), "<memory>", &digest);
  EXPECT_EQ(digest, "digest-123");
  expect_identical(original, decoded);
}

TEST(TraceFormat, FileRoundTripsExactly) {
  TempDir tmp;
  const std::string path = tmp.file("cap.cmstrace");
  const CaptureRun original = sample_capture();
  save_capture(original, "abc", path);
  std::string digest;
  const CaptureRun loaded = load_capture(path, &digest);
  EXPECT_EQ(digest, "abc");
  expect_identical(original, loaded);
  // No temp files left behind.
  std::size_t files = 0;
  for (const auto& e : fs::directory_iterator(tmp.path)) {
    (void)e;
    ++files;
  }
  EXPECT_EQ(files, 1u);
}

TEST(TraceFormat, TruncatedFileThrowsWithPath) {
  TempDir tmp;
  const std::string path = tmp.file("truncated.cmstrace");
  save_capture(sample_capture(), "d", path);
  const auto full_size = fs::file_size(path);
  // Cut in the middle of the payload AND down to less than a header.
  for (const std::uintmax_t keep : {full_size / 2, std::uintmax_t{5}}) {
    fs::resize_file(path, keep);
    expect_error_mentioning([&] { load_capture(path); }, path);
  }
}

TEST(TraceFormat, BadMagicThrowsWithPath) {
  TempDir tmp;
  const std::string path = tmp.file("notatrace.cmstrace");
  save_capture(sample_capture(), "d", path);
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.put('X');  // clobber the first magic byte
  f.close();
  expect_error_mentioning([&] { load_capture(path); }, path);
  expect_error_mentioning([&] { load_capture(path); }, "magic");
}

TEST(TraceFormat, FutureSchemaVersionThrowsWithPath) {
  TempDir tmp;
  const std::string path = tmp.file("future.cmstrace");
  save_capture(sample_capture(), "d", path);
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(8);   // version field sits right after the 8-byte magic
  f.put(99);    // little-endian low byte -> version 99
  f.close();
  // Version is diagnosed BEFORE the checksum: a future format may
  // checksum differently, and "please upgrade" beats "corrupt file".
  expect_error_mentioning([&] { load_capture(path); }, path);
  expect_error_mentioning([&] { load_capture(path); }, "version");
}

TEST(TraceFormat, ChecksumMismatchThrowsWithPath) {
  TempDir tmp;
  const std::string path = tmp.file("bitrot.cmstrace");
  save_capture(sample_capture(), "d", path);
  const auto size = fs::file_size(path);
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekg(static_cast<std::streamoff>(size / 2));
  const int orig = f.get();
  f.seekp(static_cast<std::streamoff>(size / 2));
  f.put(static_cast<char>(orig ^ 0x40));  // flip one payload bit
  f.close();
  expect_error_mentioning([&] { load_capture(path); }, path);
  expect_error_mentioning([&] { load_capture(path); }, "checksum");
}

TEST(TraceStore, MissReturnsNulloptAndCounts) {
  TempDir tmp;
  const TraceStore store(tmp.file("store"));
  EXPECT_FALSE(store.load("nope").has_value());
  EXPECT_EQ(store.stats().misses, 1u);
  EXPECT_EQ(store.stats().hits, 0u);
}

TEST(TraceStore, SaveThenLoadRoundTrips) {
  TempDir tmp;
  const TraceStore store(tmp.file("store"));
  const CaptureRun original = sample_capture();
  store.save("k1", original);
  EXPECT_EQ(store.stats().writes, 1u);
  const auto loaded = store.load("k1");
  ASSERT_TRUE(loaded.has_value());
  expect_identical(original, *loaded);
  EXPECT_EQ(store.stats().hits, 1u);
}

TEST(TraceStore, DifferentDigestMissesInsteadOfServingStale) {
  TempDir tmp;
  const TraceStore store(tmp.file("store"));
  store.save("k1", sample_capture());
  // Any digest change — different jitter seed, tweaked app config —
  // produces a different key and must MISS, not replay the stale trace.
  EXPECT_FALSE(store.load("k2").has_value());
}

TEST(TraceStore, RenamedEntryIsRejectedNotServed) {
  TempDir tmp;
  const TraceStore store(tmp.file("store"));
  store.save("k1", sample_capture());
  fs::rename(store.path_of("k1"), store.path_of("k2"));
  // The embedded digest disagrees with the requested key: hard error.
  expect_error_mentioning([&] { store.load("k2"); }, "digest");
}

TEST(TraceStore, ReadOnlyStoreNeverWrites) {
  TempDir tmp;
  {
    const TraceStore rw(tmp.file("store"));
    rw.save("k1", sample_capture());
  }
  const TraceStore ro(tmp.file("store"), /*read_only=*/true);
  ro.save("k2", sample_capture());  // silently skipped
  EXPECT_EQ(ro.stats().writes, 0u);
  EXPECT_FALSE(fs::exists(ro.path_of("k2")));
  EXPECT_TRUE(ro.load("k1").has_value());  // reads still work
}

// ---- Property/fuzz pass: every corruption of a valid blob must throw ----

TEST(TraceFormatFuzz, RandomTruncationsAlwaysThrow) {
  const std::vector<std::uint8_t> bytes =
      encode_capture(sample_capture(), "fuzz-digest");
  Rng rng(0x7121CE5EEDull);  // deterministic: any failure reproduces
  for (int i = 0; i < 300; ++i) {
    const auto keep = static_cast<std::size_t>(rng.below(bytes.size()));
    EXPECT_THROW(decode_capture(bytes.data(), keep, "<fuzz-trunc>"),
                 std::runtime_error)
        << "kept " << keep << " of " << bytes.size() << " bytes";
  }
}

TEST(TraceFormatFuzz, RandomByteMutationsAlwaysThrow) {
  const std::vector<std::uint8_t> original =
      encode_capture(sample_capture(), "fuzz-digest");
  Rng rng(0xC0FFEEull);
  for (int i = 0; i < 300; ++i) {
    std::vector<std::uint8_t> bytes = original;
    const int flips = 1 + static_cast<int>(rng.below(4));
    for (int f = 0; f < flips; ++f) {
      const auto pos = static_cast<std::size_t>(rng.below(bytes.size()));
      bytes[pos] ^= static_cast<std::uint8_t>(1 + rng.below(255));
    }
    if (bytes == original) continue;  // flips cancelled out: not a mutation
    EXPECT_THROW(decode_capture(bytes.data(), bytes.size(), "<fuzz-mut>"),
                 std::runtime_error)
        << "mutation " << i << " decoded silently";
  }
}

TEST(TraceFormatFuzz, AppendedGarbageAlwaysThrows) {
  // Growing a file must fail too: the trailer checksum anchors to the end.
  const std::vector<std::uint8_t> original =
      encode_capture(sample_capture(), "fuzz-digest");
  Rng rng(0xD1CEull);
  for (int i = 0; i < 50; ++i) {
    std::vector<std::uint8_t> bytes = original;
    const auto extra = static_cast<std::size_t>(1 + rng.below(16));
    for (std::size_t e = 0; e < extra; ++e)
      bytes.push_back(static_cast<std::uint8_t>(rng.next_u32()));
    EXPECT_THROW(decode_capture(bytes.data(), bytes.size(), "<fuzz-app>"),
                 std::runtime_error);
  }
}

TEST(TraceFormatFuzz, FileTruncationsAndMutationsAlwaysThrow) {
  // Same property through the save/load file path (what the store does).
  TempDir tmp;
  const std::string path = tmp.file("fuzz.cmstrace");
  const CaptureRun original = sample_capture();
  Rng rng(0xF17Eull);
  for (int i = 0; i < 30; ++i) {
    save_capture(original, "d", path);  // restore pristine
    const auto size = fs::file_size(path);
    if (rng.chance(0.5)) {
      fs::resize_file(path, rng.below(size));  // strictly shorter
    } else {
      std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
      const auto pos = static_cast<std::streamoff>(rng.below(size));
      f.seekg(pos);
      const int orig = f.get();
      f.seekp(pos);
      f.put(static_cast<char>(orig ^
                              static_cast<int>(1 + rng.below(255))));
    }
    EXPECT_THROW(load_capture(path), std::runtime_error) << "round " << i;
  }
}

// ---- Capacity management: LRU eviction, pinning, gc ----

CaptureRun capture_numbered(std::uint64_t n) {
  CaptureRun c = sample_capture();
  c.tasks[0].instructions = 1000 + n;  // distinguishable per digest
  return c;
}

TEST(TraceStoreCapacity, EvictsLeastRecentlyUsedAboveEntryBudget) {
  TempDir tmp;
  TraceStore::Capacity cap;
  cap.max_entries = 2;
  const TraceStore store(tmp.file("store"), false, cap);
  store.save("a", capture_numbered(0));
  store.save("b", capture_numbered(1));
  store.save("c", capture_numbered(2));  // evicts a (oldest)
  EXPECT_FALSE(fs::exists(store.path_of("a")));
  EXPECT_TRUE(store.load("b").has_value());  // touches b
  store.save("d", capture_numbered(3));      // evicts c, NOT the fresher b
  EXPECT_FALSE(fs::exists(store.path_of("c")));
  EXPECT_TRUE(store.load("b").has_value());
  EXPECT_TRUE(store.load("d").has_value());
  const auto st = store.stats();
  EXPECT_EQ(st.evictions, 2u);
  EXPECT_EQ(st.entries, 2u);
  EXPECT_GT(st.evicted_bytes, 0u);
}

TEST(TraceStoreCapacity, ByteBudgetEvictsUntilItFits) {
  TempDir tmp;
  const std::uint64_t one_entry = [&] {
    const TraceStore probe(tmp.file("probe"));
    probe.save("x", capture_numbered(0));
    return probe.stats().bytes;
  }();
  TraceStore::Capacity cap;
  cap.max_bytes = one_entry * 2;  // room for two entries, not three
  const TraceStore store(tmp.file("store"), false, cap);
  store.save("a", capture_numbered(0));
  store.save("b", capture_numbered(1));
  store.save("c", capture_numbered(2));
  const auto st = store.stats();
  EXPECT_LE(st.bytes, cap.max_bytes);
  EXPECT_EQ(st.entries, 2u);
  EXPECT_FALSE(fs::exists(store.path_of("a")));
}

TEST(TraceStoreCapacity, PinnedEntriesAreNeverEvicted) {
  TempDir tmp;
  TraceStore::Capacity cap;
  cap.max_entries = 1;
  const TraceStore store(tmp.file("store"), false, cap);
  {
    const TraceStore::Pin pin = store.pin("a");  // pin BEFORE the save
    EXPECT_EQ(store.stats().pinned, 1u);
    store.save("a", capture_numbered(0));
    // "a" is the LRU entry and the over-budget save would normally evict
    // it — but it is pinned, so the enforcement falls through to the only
    // unpinned candidate: the entry just written.
    store.save("b", capture_numbered(1));
    EXPECT_TRUE(fs::exists(store.path_of("a")));
    EXPECT_FALSE(fs::exists(store.path_of("b")));
    EXPECT_TRUE(store.load("a").has_value());  // intact, not corrupted
  }
  EXPECT_EQ(store.stats().pinned, 0u);
  // Unpinned now: the next over-budget save claims it as LRU victim.
  store.save("c", capture_numbered(2));
  EXPECT_FALSE(fs::exists(store.path_of("a")));
  EXPECT_TRUE(fs::exists(store.path_of("c")));
}

TEST(TraceStoreCapacity, ReopenedStoreIndexesExistingEntriesOldestFirst) {
  TempDir tmp;
  {
    const TraceStore w(tmp.file("store"));
    w.save("a", capture_numbered(0));
    w.save("b", capture_numbered(1));
    w.save("c", capture_numbered(2));
  }
  TraceStore::Capacity cap;
  cap.max_entries = 2;
  const TraceStore store(tmp.file("store"), false, cap);
  EXPECT_EQ(store.stats().entries, 3u);  // indexed, over budget until gc
  const auto gr = store.gc();
  EXPECT_EQ(gr.evicted_entries, 1u);
  EXPECT_EQ(store.stats().entries, 2u);
}

TEST(TraceStoreCapacity, VanishedEntryIsAMissNotAnError) {
  TempDir tmp;
  const TraceStore store(tmp.file("store"));
  store.save("a", capture_numbered(0));
  fs::remove(store.path_of("a"));  // another process evicted it
  EXPECT_FALSE(store.load("a").has_value());
  EXPECT_EQ(store.stats().misses, 1u);
  EXPECT_EQ(store.stats().entries, 0u);  // index resynced
  EXPECT_FALSE(store.contains("a"));
}

TEST(TraceStoreCapacity, UnknownEntrySizeIsReStattedNotFrozen) {
  // An entry whose stat fails at index time (here: a directory wearing an
  // entry's name — exists() true, file_size() error, the same shape as a
  // peer eviction racing the stat) must not freeze the byte accounting
  // at 0: once the file becomes stat-able, gc() re-stats it and
  // stats().bytes converges to the on-disk truth.
  TempDir tmp;
  const TraceStore store(tmp.file("store"));
  store.save("a", capture_numbered(0));
  const std::uint64_t a_bytes = store.stats().bytes;
  ASSERT_GT(a_bytes, 0u);

  fs::create_directory(store.path_of("ghost"));
  EXPECT_TRUE(store.contains("ghost"));  // indexed with unknown size
  EXPECT_EQ(store.stats().entries, 2u);
  EXPECT_EQ(store.stats().bytes, a_bytes);  // unknown contributes nothing

  // The path becomes a real entry (what a racing writer's rename does).
  fs::remove(store.path_of("ghost"));
  save_capture(capture_numbered(7), "ghost", store.path_of("ghost"));
  store.gc();  // re-stats unknown-size entries before any budget decision
  EXPECT_EQ(store.stats().bytes,
            a_bytes + fs::file_size(store.path_of("ghost")));
}

TEST(TraceStoreCapacity, UnknownSizeOfVanishedEntryIsDropped) {
  TempDir tmp;
  const TraceStore store(tmp.file("store"));
  fs::create_directory(store.path_of("ghost"));
  EXPECT_TRUE(store.contains("ghost"));
  fs::remove(store.path_of("ghost"));  // gone before it could be statted
  store.gc();
  EXPECT_EQ(store.stats().entries, 0u);
  EXPECT_EQ(store.stats().bytes, 0u);
}

TEST(TraceStoreCapacity, FailedUnlinkKeepsTheEntryAccounted) {
  // fs::remove failing (here: the entry's path is a NON-EMPTY directory,
  // which unlinks with ENOTEMPTY) must not drop the index entry: the
  // bytes are still on disk, and evicted_bytes must not claim bytes that
  // were never freed. Enforcement skips the victim and falls through to
  // the next candidate instead.
  TempDir tmp;
  TraceStore::Capacity cap;
  cap.max_entries = 1;
  const TraceStore store(tmp.file("store"), false, cap);
  store.save("a", capture_numbered(0));
  const std::uint64_t a_bytes = store.stats().bytes;

  // Swap a's file for a non-empty directory: the next unlink fails.
  fs::remove(store.path_of("a"));
  fs::create_directories(fs::path(store.path_of("a")) / "sub");

  store.save("b", capture_numbered(1));
  // "a" was the LRU victim but could not be unlinked -> kept (and still
  // counted); enforcement fell through to "b", the only other candidate.
  const auto st = store.stats();
  EXPECT_EQ(st.entries, 1u);
  EXPECT_EQ(st.bytes, a_bytes);
  EXPECT_EQ(st.evictions, 1u);  // b, not a
  EXPECT_TRUE(fs::exists(store.path_of("a")));
  EXPECT_FALSE(fs::exists(store.path_of("b")));
}

TEST(TraceStoreCapacity, AlreadyVanishedVictimIsNotCountedAsEvicted) {
  TempDir tmp;
  TraceStore::Capacity cap;
  cap.max_entries = 1;
  const TraceStore store(tmp.file("store"), false, cap);
  store.save("a", capture_numbered(0));
  fs::remove(store.path_of("a"));  // another process evicted it already
  store.save("b", capture_numbered(1));
  // The index entry for "a" is dropped (resynced), but no eviction — and
  // no freed bytes — are claimed for a file we never removed.
  const auto st = store.stats();
  EXPECT_EQ(st.evictions, 0u);
  EXPECT_EQ(st.evicted_bytes, 0u);
  EXPECT_EQ(st.entries, 1u);
  EXPECT_TRUE(fs::exists(store.path_of("b")));
}

TEST(TraceStoreCapacity, ContainsProbesWithoutCountingHits) {
  TempDir tmp;
  const TraceStore store(tmp.file("store"));
  EXPECT_FALSE(store.contains("a"));
  store.save("a", capture_numbered(0));
  EXPECT_TRUE(store.contains("a"));
  EXPECT_EQ(store.stats().hits, 0u);
  EXPECT_EQ(store.stats().misses, 0u);
}

// ---- Concurrency stress: N threads on one rw store dir ----

TEST(TraceStoreStress, ConcurrentReadersWritersEvictorsStayConsistent) {
  // 8 threads hammer one read-write store with overlapping digests under
  // a tight entry budget: saves, verified loads, probes, pins and gc all
  // interleave. The invariants: no call throws, the atomic counters add
  // up exactly, and every surviving entry decodes bit-identically to its
  // canonical capture (eviction may lose entries, never corrupt them).
  TempDir tmp;
  constexpr int kThreads = 8;
  constexpr int kOps = 150;
  constexpr std::uint64_t kDigests = 6;
  TraceStore::Capacity cap;
  cap.max_entries = 4;
  const TraceStore store(tmp.file("store"), false, cap);

  std::vector<CaptureRun> canonical;
  for (std::uint64_t d = 0; d < kDigests; ++d)
    canonical.push_back(capture_numbered(d));
  const auto digest_of = [](std::uint64_t d) {
    return "stress-k" + std::to_string(d);
  };

  std::atomic<std::uint64_t> loads{0}, saves{0};
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    pool.emplace_back([&, t] {
      Rng rng(0x57E55ull + static_cast<std::uint64_t>(t));
      for (int op = 0; op < kOps; ++op) {
        const std::uint64_t d = rng.below(kDigests);
        const std::string digest = digest_of(d);
        switch (rng.below(6)) {
          case 0:
          case 1:
            store.save(digest, canonical[d]);
            saves.fetch_add(1, std::memory_order_relaxed);
            break;
          case 2:
          case 3: {
            // Pin across the load like the planning service does.
            const TraceStore::Pin pin = store.pin(digest);
            const auto hit = store.load(digest);
            loads.fetch_add(1, std::memory_order_relaxed);
            if (hit) {
              EXPECT_EQ(hit->tasks[0].instructions, 1000 + d)
                  << "digest " << digest << " served someone else's capture";
            }
            break;
          }
          case 4:
            store.contains(digest);
            break;
          case 5:
            store.gc();
            break;
        }
      }
    });
  for (auto& th : pool) th.join();

  const TraceStore::Stats st = store.stats();
  EXPECT_EQ(st.writes, saves.load());
  EXPECT_EQ(st.hits + st.misses, loads.load());
  EXPECT_EQ(st.pinned, 0u);
  store.gc();
  EXPECT_LE(store.stats().entries, 4u);
  for (std::uint64_t d = 0; d < kDigests; ++d)
    if (const auto hit = store.load(digest_of(d)))
      expect_identical(canonical[d], *hit);

  // Post-hoc size audit: at quiescence (no concurrent instance, gc run,
  // any stat that failed mid-race re-statted) the byte accounting must
  // equal the on-disk truth exactly — the invariant the unknown-size
  // re-stat exists to restore.
  store.gc();
  std::uint64_t disk_bytes = 0, disk_entries = 0;
  for (const auto& e : fs::directory_iterator(tmp.file("store"))) {
    if (e.path().extension() != ".cmstrace") continue;
    disk_bytes += static_cast<std::uint64_t>(e.file_size());
    ++disk_entries;
  }
  EXPECT_EQ(store.stats().entries, disk_entries);
  EXPECT_EQ(store.stats().bytes, disk_bytes);
}

// ---- Backend-parameterized suite: the store semantics hold over any
// ---- StoreBackend, not just the historical directory layout ----

enum class BackendKind { kDir, kMem };

const char* to_string(BackendKind k) {
  return k == BackendKind::kDir ? "dir" : "mem";
}

class TraceStoreAnyBackend : public ::testing::TestWithParam<BackendKind> {
 protected:
  /// A handle onto the SAME underlying storage each call — a fresh
  /// DirBackend over one directory, or one shared MemBackend instance —
  /// so constructing a new TraceStore over backend() models a process
  /// reopening its store.
  std::shared_ptr<StoreBackend> backend() {
    if (GetParam() == BackendKind::kDir)
      return std::make_shared<DirBackend>(tmp_.file("store"));
    if (mem_ == nullptr) mem_ = std::make_shared<MemBackend>();
    return mem_;
  }

  bool entry_exists(const std::string& digest) {
    return backend()->contains(BlobKind::kTrace, digest);
  }
  void vanish_entry(const std::string& digest) {
    backend()->remove(BlobKind::kTrace, digest);
  }

  TempDir tmp_;
  std::shared_ptr<MemBackend> mem_;
};

TEST_P(TraceStoreAnyBackend, SaveThenLoadRoundTrips) {
  const TraceStore store(backend());
  const CaptureRun original = sample_capture();
  store.save("k1", original);
  const auto loaded = store.load("k1");
  ASSERT_TRUE(loaded.has_value());
  expect_identical(original, *loaded);
  EXPECT_EQ(store.stats().hits, 1u);
  EXPECT_EQ(store.stats().writes, 1u);
  EXPECT_FALSE(store.load("other").has_value());
  EXPECT_EQ(store.stats().misses, 1u);
}

TEST_P(TraceStoreAnyBackend, CorruptEntryThrowsInsteadOfServing) {
  const TraceStore store(backend());
  backend()->put(BlobKind::kTrace, "bad",
                 StoreBackend::Blob{'n', 'o', 't', 'a', 't', 'r', 'a', 'c',
                                    'e'});
  expect_error_mentioning([&] { store.load("bad"); }, "bad");
}

TEST_P(TraceStoreAnyBackend, MislabeledEntryIsRejected) {
  const TraceStore store(backend());
  // A valid blob stored under the WRONG digest (a hand-copied entry).
  backend()->put(BlobKind::kTrace, "wrong-key",
                 encode_capture(sample_capture(), "actual-digest"));
  expect_error_mentioning([&] { store.load("wrong-key"); }, "digest");
}

TEST_P(TraceStoreAnyBackend, VanishedEntryIsAMissNotAnError) {
  const TraceStore store(backend());
  store.save("a", capture_numbered(0));
  vanish_entry("a");  // another process evicted it
  EXPECT_FALSE(store.load("a").has_value());
  EXPECT_EQ(store.stats().misses, 1u);
  EXPECT_EQ(store.stats().entries, 0u);  // index resynced
  EXPECT_FALSE(store.contains("a"));
}

TEST_P(TraceStoreAnyBackend, LruEvictionAboveEntryBudget) {
  TraceStore::Capacity cap;
  cap.max_entries = 2;
  const TraceStore store(backend(), false, cap);
  store.save("a", capture_numbered(0));
  store.save("b", capture_numbered(1));
  store.save("c", capture_numbered(2));  // evicts a (oldest)
  EXPECT_FALSE(entry_exists("a"));
  EXPECT_TRUE(store.load("b").has_value());  // touches b
  store.save("d", capture_numbered(3));      // evicts c, NOT the fresher b
  EXPECT_FALSE(entry_exists("c"));
  EXPECT_TRUE(store.load("b").has_value());
  EXPECT_TRUE(store.load("d").has_value());
  const auto st = store.stats();
  EXPECT_EQ(st.evictions, 2u);
  EXPECT_EQ(st.entries, 2u);
  EXPECT_GT(st.evicted_bytes, 0u);
}

TEST_P(TraceStoreAnyBackend, PinnedEntriesAreNeverEvicted) {
  TraceStore::Capacity cap;
  cap.max_entries = 1;
  const TraceStore store(backend(), false, cap);
  {
    const TraceStore::Pin pin = store.pin("a");
    store.save("a", capture_numbered(0));
    store.save("b", capture_numbered(1));  // falls through to evicting b
    EXPECT_TRUE(entry_exists("a"));
    EXPECT_FALSE(entry_exists("b"));
  }
  store.save("c", capture_numbered(2));  // unpinned now: a is the victim
  EXPECT_FALSE(entry_exists("a"));
  EXPECT_TRUE(entry_exists("c"));
}

TEST_P(TraceStoreAnyBackend, ReopenIndexesExistingEntriesOldestFirst) {
  {
    const TraceStore w(backend());
    w.save("a", capture_numbered(0));
    w.save("b", capture_numbered(1));
    w.save("c", capture_numbered(2));
  }
  TraceStore::Capacity cap;
  cap.max_entries = 2;
  const TraceStore store(backend(), false, cap);
  EXPECT_EQ(store.stats().entries, 3u);  // indexed, over budget until gc
  const auto gr = store.gc();
  EXPECT_EQ(gr.evicted_entries, 1u);
  EXPECT_EQ(store.stats().entries, 2u);
}

TEST_P(TraceStoreAnyBackend, ReadOnlyStoreNeverWrites) {
  {
    const TraceStore rw(backend());
    rw.save("k1", sample_capture());
  }
  const TraceStore ro(backend(), /*read_only=*/true);
  ro.save("k2", sample_capture());  // silently skipped
  EXPECT_EQ(ro.stats().writes, 0u);
  EXPECT_FALSE(entry_exists("k2"));
  EXPECT_TRUE(ro.load("k1").has_value());  // reads still work
}

TEST_P(TraceStoreAnyBackend, ContainsProbesWithoutCountingHits) {
  const TraceStore store(backend());
  EXPECT_FALSE(store.contains("a"));
  store.save("a", capture_numbered(0));
  EXPECT_TRUE(store.contains("a"));
  EXPECT_EQ(store.stats().hits, 0u);
  EXPECT_EQ(store.stats().misses, 0u);
}

INSTANTIATE_TEST_SUITE_P(Backends, TraceStoreAnyBackend,
                         ::testing::Values(BackendKind::kDir,
                                           BackendKind::kMem),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

// ---- Reopen determinism: mtime ties break by digest ----

TEST(TraceStoreCapacity, ReopenEvictionOrderIsDeterministicUnderMtimeTies) {
  // Entries written within one filesystem-timestamp quantum used to be
  // indexed in directory-iteration order, making which entry a budgeted
  // reopen evicts first nondeterministic across runs. The backend breaks
  // mtime ties by digest, so with all three mtimes forced equal the
  // eviction order must be digest-ascending: a, then b; c survives.
  TempDir tmp;
  {
    const TraceStore w(tmp.file("store"));
    w.save("c", capture_numbered(2));
    w.save("a", capture_numbered(0));
    w.save("b", capture_numbered(1));
  }
  {
    const DirBackend probe(tmp.file("store"));
    const auto stamp =
        fs::last_write_time(probe.path_of(BlobKind::kTrace, "a"));
    for (const char* d : {"a", "b", "c"})
      fs::last_write_time(probe.path_of(BlobKind::kTrace, d), stamp);
  }
  TraceStore::Capacity cap;
  cap.max_entries = 1;
  const TraceStore store(tmp.file("store"), false, cap);
  const auto gr = store.gc();
  EXPECT_EQ(gr.evicted_entries, 2u);
  EXPECT_FALSE(fs::exists(store.path_of("a")));
  EXPECT_FALSE(fs::exists(store.path_of("b")));
  EXPECT_TRUE(fs::exists(store.path_of("c")));
}

// ---- Tiered store: read-through, degradation, corruption ----

TEST(TraceStoreTiered, L1EvictionDegradesToL2ReadThrough) {
  // A tight local budget evicts from L1 only; the evicted capture is
  // still one read-through away in the shared far tier.
  const auto l1 = std::make_shared<MemBackend>();
  const auto l2 = std::make_shared<MemBackend>();
  TraceStore::Capacity cap;
  cap.max_entries = 1;
  const TraceStore store(std::make_shared<TieredBackend>(l1, l2), false,
                         cap);
  store.save("a", capture_numbered(0));
  store.save("b", capture_numbered(1));  // evicts a from L1 only
  EXPECT_FALSE(l1->contains(BlobKind::kTrace, "a"));
  EXPECT_TRUE(l2->contains(BlobKind::kTrace, "a"));
  const auto hit = store.load("a");  // read-through + promote
  ASSERT_TRUE(hit.has_value());
  expect_identical(capture_numbered(0), *hit);
  ASSERT_TRUE(store.stats().tiers.has_value());
  EXPECT_GE(store.stats().tiers->l2_hits, 1u);
  EXPECT_GE(store.stats().tiers->promotions, 1u);
}

TEST(TraceStoreTiered, EvictedEntryAbsentFromL2IsAMissToRecapture) {
  // With a read-only (unwritten) far tier, an L1 eviction really loses
  // the entry: the next load is a MISS and the caller re-captures —
  // never an error.
  const auto l1 = std::make_shared<MemBackend>();
  const auto l2 = std::make_shared<MemBackend>();
  TraceStore::Capacity cap;
  cap.max_entries = 1;
  const TraceStore store(
      std::make_shared<TieredBackend>(l1, l2, /*l2_writable=*/false), false,
      cap);
  store.save("a", capture_numbered(0));
  store.save("b", capture_numbered(1));  // evicts a; L2 never had it
  EXPECT_FALSE(store.load("a").has_value());
  EXPECT_EQ(store.stats().misses, 1u);
  store.save("a", capture_numbered(0));  // the re-capture
  EXPECT_TRUE(store.load("a").has_value());
}

TEST(TraceStoreTiered, CorruptL2EntryThrowsOnLoad) {
  // Corruption in the far tier is surfaced exactly like local
  // corruption: the read-through bytes fail to decode while the entry
  // remains present, which is a hard error — never a silent re-capture.
  TempDir tmp;
  const auto l1 = std::make_shared<MemBackend>();
  const auto l2 = std::make_shared<DirBackend>(tmp.file("far"));
  l2->put(BlobKind::kTrace, "bad",
          StoreBackend::Blob{'g', 'a', 'r', 'b', 'a', 'g', 'e'});
  const TraceStore store(std::make_shared<TieredBackend>(l1, l2));
  expect_error_mentioning([&] { store.load("bad"); }, "bad");
}

TEST(TraceStoreTiered, L2DirRemovedMidRunDegradesToL1Only) {
  // The far directory disappearing out from under a running store (an
  // unmounted share, a cleaned-up CI artifact) must not fail a single
  // store call: write-throughs degrade with a warning, reads are served
  // from L1, and the degradations are visible in l2_errors.
  TempDir tmp;
  const auto l1 = std::make_shared<MemBackend>();
  const auto l2 = std::make_shared<DirBackend>(tmp.file("far"));
  const TraceStore store(std::make_shared<TieredBackend>(l1, l2));
  store.save("a", capture_numbered(0));
  ASSERT_TRUE(l2->contains(BlobKind::kTrace, "a"));

  fs::remove_all(tmp.file("far"));  // the far tier vanishes mid-run

  EXPECT_TRUE(store.load("a").has_value());  // still served from L1
  EXPECT_NO_THROW(store.save("b", capture_numbered(1)));  // degrades
  EXPECT_TRUE(store.load("b").has_value());
  EXPECT_FALSE(fs::exists(tmp.file("far")));  // nothing resurrected it
  const auto st = store.stats();
  ASSERT_TRUE(st.tiers.has_value());
  EXPECT_GE(st.tiers->l2_errors, 1u);  // the failed write-through
  EXPECT_EQ(st.writes, 2u);            // both saves succeeded
}

TEST(TraceStoreTiered, TwoProcessReadThroughServesEverythingFromL2) {
  // The CI shape: process one populates a shared far tier; process two —
  // a fresh, EMPTY L1 over the same L2 — must answer every load by
  // read-through, bit-identically, with zero misses.
  const auto shared_l2 = std::make_shared<MemBackend>();
  {
    const TraceStore writer(
        std::make_shared<TieredBackend>(std::make_shared<MemBackend>(),
                                        shared_l2));
    writer.save("a", capture_numbered(0));
    writer.save("b", capture_numbered(1));
  }
  const auto fresh_l1 = std::make_shared<MemBackend>();
  const TraceStore reader(
      std::make_shared<TieredBackend>(fresh_l1, shared_l2,
                                      /*l2_writable=*/false));
  EXPECT_EQ(reader.stats().entries, 0u);  // L1 reopen index is empty
  const auto a = reader.load("a");
  const auto b = reader.load("b");
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  expect_identical(capture_numbered(0), *a);
  expect_identical(capture_numbered(1), *b);
  const auto st = reader.stats();
  EXPECT_EQ(st.misses, 0u);
  EXPECT_EQ(st.hits, 2u);
  ASSERT_TRUE(st.tiers.has_value());
  EXPECT_EQ(st.tiers->l2_hits, 2u);
  EXPECT_EQ(st.tiers->promotions, 2u);
  EXPECT_TRUE(fresh_l1->contains(BlobKind::kTrace, "a"));  // promoted
}

// ---- Experiment integration: capture once, replay across processes ----

core::ExperimentConfig store_experiment(std::shared_ptr<TraceStore> store,
                                        std::uint64_t app_seed = 5) {
  core::ExperimentConfig cfg;
  cfg.platform.hier.l2.size_bytes = 32 * 1024;
  cfg.profile_grid = {1, 4, 16};
  cfg.profile_runs = 2;
  cfg.profiler = core::ProfilerMode::kTraceReplay;
  cfg.trace_store = std::move(store);
  cfg.trace_key =
      core::app_trace_key("store-test", apps::AppConfig::tiny(app_seed));
  return cfg;
}

core::AppFactory tiny_m2v(std::uint64_t app_seed = 5) {
  return [app_seed] {
    return apps::make_m2v_app(apps::AppConfig::tiny(app_seed));
  };
}

TEST(TraceStore, ExperimentWarmStartsBitIdentically) {
  TempDir tmp;
  const auto cold_store = std::make_shared<TraceStore>(tmp.file("store"));
  const core::Experiment cold(tiny_m2v(), store_experiment(cold_store));
  const MissProfile reference = cold.profile();
  EXPECT_EQ(cold_store->stats().misses, 2u);  // one per jitter run
  EXPECT_EQ(cold_store->stats().writes, 2u);

  // A fresh store instance over the same directory models a new process:
  // every capture comes off disk, no simulation runs, profile identical.
  const auto warm_store = std::make_shared<TraceStore>(tmp.file("store"));
  const core::Experiment warm(tiny_m2v(), store_experiment(warm_store));
  EXPECT_TRUE(warm.profile().identical(reference));
  EXPECT_EQ(warm_store->stats().hits, 2u);
  EXPECT_EQ(warm_store->stats().misses, 0u);

  // And the store-free profile agrees too (the store changes where
  // captures come from, never what they contain).
  core::ExperimentConfig no_store = store_experiment(nullptr);
  const core::Experiment mem(tiny_m2v(), no_store);
  EXPECT_TRUE(mem.profile().identical(reference));
}

TEST(TraceStore, DigestChangesMissTheStore) {
  TempDir tmp;
  const auto store = std::make_shared<TraceStore>(tmp.file("store"));
  const core::Experiment base(tiny_m2v(), store_experiment(store));
  base.profile();
  const auto after_base = store->stats();

  // Different app content (tiny seed) -> different trace_key -> misses.
  const core::Experiment other_app(tiny_m2v(7), store_experiment(store, 7));
  other_app.profile();
  EXPECT_EQ(store->stats().misses, after_base.misses + 2);

  // Different platform (hierarchy seed) -> different digest -> misses.
  core::ExperimentConfig tweaked = store_experiment(store);
  tweaked.platform.hier.seed ^= 1;
  const core::Experiment other_platform(tiny_m2v(), tweaked);
  other_platform.profile();
  EXPECT_EQ(store->stats().misses, after_base.misses + 4);

  // Same everything -> all hits.
  const core::Experiment again(tiny_m2v(), store_experiment(store));
  const auto before = store->stats();
  again.profile();
  EXPECT_EQ(store->stats().misses, before.misses);
  EXPECT_EQ(store->stats().hits, before.hits + 2);
}

TEST(TraceStore, DigestSeparatesJitterRuns) {
  core::ExperimentConfig cfg = store_experiment(nullptr);
  const core::Experiment exp(tiny_m2v(), cfg);
  EXPECT_NE(exp.trace_digest(0), exp.trace_digest(1));
  EXPECT_EQ(exp.trace_digest(0), exp.trace_digest(0));
}

TEST(TraceStore, EmptyTraceKeyDisablesStoreUse) {
  TempDir tmp;
  const auto store = std::make_shared<TraceStore>(tmp.file("store"));
  core::ExperimentConfig cfg = store_experiment(store);
  cfg.trace_key.clear();
  const core::Experiment exp(tiny_m2v(), cfg);
  exp.profile();  // must not touch the store (warns instead)
  EXPECT_EQ(store->stats().hits + store->stats().misses +
                store->stats().writes,
            0u);
}

TEST(TraceStore, UnusableCapturesAreNeverPersisted) {
  // A capture run that trips the dispatch safety valve (or deadlocks, or
  // fails verification) must not be written: a bad entry would be served
  // as a silent hit by every later process.
  TempDir tmp;
  const auto store = std::make_shared<TraceStore>(tmp.file("store"));
  core::ExperimentConfig cfg = store_experiment(store);
  cfg.platform.max_dispatches = 1;  // run is cut off -> verify fails
  const core::Experiment exp(tiny_m2v(), cfg);
  exp.profile();
  EXPECT_EQ(store->stats().writes, 0u);
}

TEST(TraceStore, KRandomCapturesRoundTripThroughTheStore) {
  // The acceptance bar: store-loaded replay == in-memory replay ==
  // full simulation, including kRandom replacement.
  TempDir tmp;
  auto make_cfg = [&](std::shared_ptr<TraceStore> store) {
    core::ExperimentConfig cfg = store_experiment(std::move(store));
    cfg.platform.hier.l2.replacement = mem::Replacement::kRandom;
    return cfg;
  };
  const core::Experiment mem(tiny_m2v(), make_cfg(nullptr));
  const MissProfile fullsim = mem.profile_with(core::ProfilerMode::kFullSim);

  const auto s1 = std::make_shared<TraceStore>(tmp.file("store"));
  const core::Experiment cold(tiny_m2v(), make_cfg(s1));
  EXPECT_TRUE(cold.profile().identical(fullsim));

  const auto s2 = std::make_shared<TraceStore>(tmp.file("store"));
  const core::Experiment warm(tiny_m2v(), make_cfg(s2));
  EXPECT_TRUE(warm.profile().identical(fullsim));
  EXPECT_EQ(s2->stats().misses, 0u);
}

}  // namespace
}  // namespace cms::opt
