// Tests for the KPN network container and the Kahn determinism property
// of complete applications.
#include <gtest/gtest.h>

#include "apps/applications.hpp"
#include "core/experiment.hpp"
#include "kpn/network.hpp"

namespace cms::kpn {
namespace {

class NopProcess final : public Process {
 public:
  NopProcess(TaskId id, std::string name) : Process(id, std::move(name)) {}
  bool can_fire() const override { return false; }
  bool done() const override { return true; }
  void run(sim::TaskContext&) override {}
};

TEST(Network, AssignsSequentialIds) {
  Network net;
  auto* a = net.add_process<NopProcess>("a", ProcessSpec{});
  auto* b = net.add_process<NopProcess>("b", ProcessSpec{});
  EXPECT_EQ(a->id(), 0);
  EXPECT_EQ(b->id(), 1);
  auto* f = net.make_fifo<int>("f", 4);
  auto* fb = net.make_frame_buffer("fb", 1024);
  EXPECT_EQ(f->id(), 0);
  EXPECT_EQ(fb->id(), 1);
}

TEST(Network, RegionsAreDisjoint) {
  Network net;
  net.add_process<NopProcess>("a", ProcessSpec{});
  net.make_fifo<int>("f", 64);
  net.make_frame_buffer("fb", 4096);
  net.make_segment("seg", 4096);
  const auto& regions = net.space().regions();
  for (std::size_t i = 0; i < regions.size(); ++i)
    for (std::size_t j = i + 1; j < regions.size(); ++j) {
      const bool disjoint = regions[i].end() <= regions[j].base ||
                            regions[j].end() <= regions[i].base;
      EXPECT_TRUE(disjoint) << regions[i].name << " vs " << regions[j].name;
    }
}

TEST(Network, LookupByName) {
  Network net;
  net.add_process<NopProcess>("proc", ProcessSpec{});
  net.make_fifo<int>("fifo", 4);
  net.make_frame_buffer("frame", 64);
  EXPECT_NE(net.find_process("proc"), nullptr);
  EXPECT_NE(net.find_fifo("fifo"), nullptr);
  EXPECT_NE(net.find_frame("frame"), nullptr);
  EXPECT_EQ(net.find_process("nope"), nullptr);
  EXPECT_EQ(net.find_fifo("nope"), nullptr);
  EXPECT_EQ(net.find_frame("nope"), nullptr);
}

TEST(Network, BufferInfoKindsAndNames) {
  Network net;
  net.make_fifo<int>("f", 4);
  net.make_frame_buffer("fb", 64);
  net.make_segment("seg", 128);
  const auto& buffers = net.buffers();
  ASSERT_EQ(buffers.size(), 3u);
  EXPECT_EQ(buffers[0].kind, BufferKind::kFifo);
  EXPECT_EQ(buffers[1].kind, BufferKind::kFrame);
  EXPECT_EQ(buffers[2].kind, BufferKind::kSegment);
  const auto names = net.buffer_names();
  EXPECT_EQ(names.at(0), "f");
  EXPECT_EQ(names.at(2), "seg");
}

TEST(Network, SegmentLookup) {
  Network net;
  const sim::Region r = net.make_segment("appl_data", 256);
  EXPECT_EQ(net.segment("appl_data").base, r.base);
  EXPECT_EQ(net.segment("missing").size, 0u);
}

// ---- Kahn determinism of the full applications: identical functional
// output regardless of platform configuration and scheduling. ----

class KahnDeterminism : public ::testing::TestWithParam<int> {};

TEST_P(KahnDeterminism, OutputIndependentOfSchedulingAndPlatform) {
  const auto jitter = static_cast<std::uint64_t>(GetParam());
  // Vary processors, L2 size and scheduler jitter; outputs must verify
  // every time (they are compared against the scheduling-independent
  // reference decoders inside verify()).
  core::ExperimentConfig cfg;
  cfg.platform.hier.num_procs = 1 + static_cast<std::uint32_t>(GetParam() % 4);
  cfg.platform.hier.l2.size_bytes = (16u << (GetParam() % 3)) * 1024;
  cfg.eval_jitter = jitter;
  core::Experiment exp(
      [] { return apps::make_jpeg_canny_app(apps::AppConfig::tiny(3)); }, cfg);
  const core::RunOutput out = exp.run_shared();
  EXPECT_TRUE(out.verified);
  EXPECT_FALSE(out.results.deadlocked);
}

INSTANTIATE_TEST_SUITE_P(Configs, KahnDeterminism, ::testing::Range(0, 6));

}  // namespace
}  // namespace cms::kpn
