// Tests for svc::PlanningService (the store-aware planning endpoint):
// concurrent clients get bit-identical assignments (and identical to a
// direct Experiment plan), repeat requests are store hits that skip the
// capture simulation, single-flight dedup performs exactly one capture
// for simultaneous identical requests, capacity eviction never corrupts
// an entry pinned by an in-flight request, and failures come back as
// error responses instead of exceptions.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/scenario.hpp"
#include "svc/planning_service.hpp"

namespace cms::svc {
namespace {

namespace fs = std::filesystem;

/// Fresh directory under the system temp dir, removed on destruction.
struct TempDir {
  fs::path path;
  TempDir() {
    static int counter = 0;
    path = fs::temp_directory_path() /
           ("cms-svc-test-" + std::to_string(::getpid()) + "-" +
            std::to_string(counter++));
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string store_dir() const { return (path / "store").string(); }
};

std::shared_ptr<opt::TraceStore> make_store(
    const TempDir& tmp,
    opt::TraceStore::Capacity cap = opt::TraceStore::Capacity()) {
  return std::make_shared<opt::TraceStore>(tmp.store_dir(),
                                           /*read_only=*/false, cap);
}

TEST(PlanService, ConcurrentClientsMatchEachOtherAndDirectPlan) {
  TempDir tmp;
  PlanningService service({make_store(tmp), /*jobs=*/1, nullptr});
  PlanRequest req;
  req.scenario = "mpeg2-tiny";

  constexpr int kClients = 4;
  std::vector<PlanResponse> responses(kClients);
  {
    std::vector<std::thread> pool;
    for (int c = 0; c < kClients; ++c)
      pool.emplace_back([&, c] { responses[c] = service.plan(req); });
    for (auto& t : pool) t.join();
  }
  for (const PlanResponse& r : responses) {
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_TRUE(r.assignment.feasible);
    EXPECT_TRUE(r.assignment.identical(responses[0].assignment));
    ASSERT_EQ(r.captures.size(), 1u);  // mpeg2-tiny: profile_runs == 1
  }

  // Identical to the plan a direct Experiment produces from the spec's
  // own (full-simulation) profiler — the service changes where captures
  // come from, never what the plan contains.
  const core::Experiment direct =
      core::scenarios().make_experiment("mpeg2-tiny");
  const opt::PartitionPlan reference = direct.plan(direct.profile());
  EXPECT_TRUE(responses[0].assignment.identical(reference));

  // Predictions come straight from the profile at the assigned sizes.
  const PlanResponse& r0 = responses[0];
  ASSERT_FALSE(r0.tasks.empty());
  for (const auto& t : r0.tasks) {
    const opt::PlanEntry* e = r0.assignment.find(t.name);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(t.sets, e->sets);
    EXPECT_EQ(t.predicted_misses, e->expected_misses);
    EXPECT_GT(t.predicted_cycles, 0.0);
  }
}

TEST(PlanService, SecondRequestHitsTheStoreAndSkipsCapture) {
  TempDir tmp;
  std::atomic<int> captures{0};
  PlanningServiceConfig cfg;
  cfg.store = make_store(tmp);
  cfg.capture_started = [&](const std::string&) { ++captures; };
  PlanningService service(std::move(cfg));

  PlanRequest req;
  req.scenario = "mpeg2-tiny";
  const PlanResponse first = service.plan(req);
  ASSERT_TRUE(first.ok) << first.error;
  EXPECT_EQ(first.captured(), 1u);
  EXPECT_EQ(captures.load(), 1);

  const PlanResponse second = service.plan(req);
  ASSERT_TRUE(second.ok) << second.error;
  EXPECT_EQ(second.captured(), 0u);
  EXPECT_EQ(second.store_hits(), 1u);
  EXPECT_EQ(captures.load(), 1);  // no new instrumented simulation
  EXPECT_TRUE(second.assignment.identical(first.assignment));

  // A fresh service over the same directory models a new server process:
  // still a pure store hit.
  PlanningService other({make_store(tmp), 1, nullptr});
  const PlanResponse warm = other.plan(req);
  ASSERT_TRUE(warm.ok) << warm.error;
  EXPECT_EQ(warm.captured(), 0u);
  EXPECT_TRUE(warm.assignment.identical(first.assignment));
}

TEST(PlanService, SingleFlightPerformsExactlyOneCapture) {
  TempDir tmp;
  std::atomic<int> captures{0};
  PlanningServiceConfig cfg;
  cfg.store = make_store(tmp);
  // Hold the single-flight leader inside the capture section long enough
  // that the other clients arrive while it is in flight; the assertion
  // below does NOT depend on this window (exactly-one-capture holds for
  // every interleaving), the delay just makes the coalesced path the
  // overwhelmingly common one.
  cfg.capture_started = [&](const std::string&) {
    ++captures;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  };
  PlanningService service(std::move(cfg));

  PlanRequest req;
  req.scenario = "mpeg2-tiny";
  constexpr int kClients = 4;
  std::vector<PlanResponse> responses(kClients);
  {
    std::vector<std::thread> pool;
    for (int c = 0; c < kClients; ++c)
      pool.emplace_back([&, c] { responses[c] = service.plan(req); });
    for (auto& t : pool) t.join();
  }

  EXPECT_EQ(captures.load(), 1);  // the single-flight guarantee
  std::uint64_t captured_total = 0;
  for (const PlanResponse& r : responses) {
    ASSERT_TRUE(r.ok) << r.error;
    captured_total += r.captured();
    EXPECT_TRUE(r.assignment.identical(responses[0].assignment));
  }
  EXPECT_EQ(captured_total, 1u);
  const ServiceStats stats = service.service_stats();
  EXPECT_EQ(stats.captured, 1u);
  EXPECT_EQ(stats.captured + stats.store_hits + stats.coalesced,
            static_cast<std::uint64_t>(kClients));
}

TEST(PlanService, EvictionUnderTightBudgetNeverCorruptsPinnedEntries) {
  // A one-entry budget forces the two scenarios to evict each other's
  // capture on every write; requests pin their digests, so the replay
  // that follows each capture always finds its entry intact. Interleave
  // concurrent requests and verify every response against unpressured
  // references.
  TempDir tmp;
  opt::TraceStore::Capacity tight;
  tight.max_entries = 1;
  PlanningService service({make_store(tmp, tight), 1, nullptr});

  const std::vector<std::string> names = {"mpeg2-tiny", "jpeg-canny-tiny"};
  std::vector<opt::PartitionPlan> reference;
  for (const auto& name : names) {
    const core::Experiment direct = core::scenarios().make_experiment(name);
    reference.push_back(direct.plan(direct.profile()));
  }

  constexpr int kRounds = 3;
  std::vector<std::vector<PlanResponse>> responses(
      names.size(), std::vector<PlanResponse>(kRounds));
  {
    std::vector<std::thread> pool;
    for (std::size_t n = 0; n < names.size(); ++n)
      pool.emplace_back([&, n] {
        PlanRequest req;
        req.scenario = names[n];
        for (int r = 0; r < kRounds; ++r) responses[n][r] = service.plan(req);
      });
    for (auto& t : pool) t.join();
  }
  for (std::size_t n = 0; n < names.size(); ++n)
    for (const PlanResponse& r : responses[n]) {
      ASSERT_TRUE(r.ok) << names[n] << ": " << r.error;
      EXPECT_TRUE(r.assignment.identical(reference[n])) << names[n];
    }

  // The budget did bite (both scenarios cannot stay resident at once):
  // with every pin released, gc() settles the store within it, and at
  // least one eviction must have happened along the way.
  service.gc();
  EXPECT_GT(service.store_stats().evictions, 0u);
  EXPECT_LE(service.store_stats().entries, 1u);
}

TEST(PlanService, RequestOverridesSeparateStoreEntriesAndPlans) {
  TempDir tmp;
  PlanningService service({make_store(tmp), 1, nullptr});
  PlanRequest req;
  req.scenario = "mpeg2-tiny";
  const PlanResponse base = service.plan(req);
  ASSERT_TRUE(base.ok) << base.error;

  // A platform override changes the capture digest (the L2 config is part
  // of the content address), so the store misses and a fresh capture runs.
  PlanRequest bigger = req;
  bigger.l2_size_bytes = 64 * 1024;
  const PlanResponse big = service.plan(bigger);
  ASSERT_TRUE(big.ok) << big.error;
  EXPECT_EQ(big.captured(), 1u);
  EXPECT_NE(big.captures[0].digest, base.captures[0].digest);
  EXPECT_EQ(big.assignment.total_sets, base.assignment.total_sets * 2);

  // A grid override replays the SAME capture (the digest does not depend
  // on the sweep grid) at different candidate sizes.
  PlanRequest coarse = req;
  coarse.grid = {1, 8};
  const PlanResponse small = service.plan(coarse);
  ASSERT_TRUE(small.ok) << small.error;
  EXPECT_EQ(small.captured(), 0u);
  EXPECT_EQ(small.captures[0].digest, base.captures[0].digest);
  for (const auto& t : small.tasks) EXPECT_TRUE(t.sets == 1 || t.sets == 8);
}

TEST(PlanService, FailuresComeBackAsErrorResponses) {
  TempDir tmp;
  PlanningService service({make_store(tmp), 1, nullptr});

  PlanRequest unknown;
  unknown.scenario = "no-such-scenario";
  const PlanResponse r1 = service.plan(unknown);
  EXPECT_FALSE(r1.ok);
  EXPECT_NE(r1.error.find("unknown scenario"), std::string::npos) << r1.error;

  PlanRequest bad_grid;
  bad_grid.scenario = "mpeg2-tiny";
  bad_grid.grid = {4, 0, 8};
  const PlanResponse r2 = service.plan(bad_grid);
  EXPECT_FALSE(r2.ok);
  EXPECT_NE(r2.error.find("size 0"), std::string::npos) << r2.error;

  // An L2 override below one set would divide by zero in the cache model.
  PlanRequest tiny_l2;
  tiny_l2.scenario = "mpeg2-tiny";
  tiny_l2.l2_size_bytes = 64;  // < line_bytes * ways
  const PlanResponse r4 = service.plan(tiny_l2);
  EXPECT_FALSE(r4.ok);
  EXPECT_NE(r4.error.find("smaller than one set"), std::string::npos)
      << r4.error;

  // A scenario without a trace_key cannot be content-addressed.
  static bool registered = false;
  if (!registered) {
    core::ScenarioSpec spec;
    spec.name = "svc-no-key";
    spec.description = "planning-service error-path fixture";
    spec.factory = [] { return apps::make_m2v_app(apps::AppConfig::tiny()); };
    core::scenarios().add(std::move(spec));
    registered = true;
  }
  PlanRequest keyless;
  keyless.scenario = "svc-no-key";
  const PlanResponse r3 = service.plan(keyless);
  EXPECT_FALSE(r3.ok);
  EXPECT_NE(r3.error.find("trace_key"), std::string::npos) << r3.error;

  EXPECT_THROW(PlanningService({nullptr, 1, nullptr}), std::invalid_argument);
}

}  // namespace
}  // namespace cms::svc
