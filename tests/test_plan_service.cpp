// Tests for svc::PlanningService (the store-aware planning endpoint):
// concurrent clients get bit-identical assignments (and identical to a
// direct Experiment plan), repeat requests are store hits that skip the
// capture simulation, single-flight dedup performs exactly one capture
// for simultaneous identical requests, capacity eviction never corrupts
// an entry pinned by an in-flight request, failures come back as error
// responses instead of exceptions, the read-only-store path reports its
// deferred captures honestly, the memoized plan cache turns repeat
// requests into pure lookups, a tiered store lets a fresh process answer
// by L2 read-through with zero captures, one shared backend feeds both
// the store and the plan cache, and the plan_server protocol parser
// rejects malformed values (non-finite/negative eps included).
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/scenario.hpp"
#include "svc/plan_protocol.hpp"
#include "svc/planning_service.hpp"

namespace cms::svc {
namespace {

namespace fs = std::filesystem;

/// Fresh directory under the system temp dir, removed on destruction.
struct TempDir {
  fs::path path;
  TempDir() {
    static int counter = 0;
    path = fs::temp_directory_path() /
           ("cms-svc-test-" + std::to_string(::getpid()) + "-" +
            std::to_string(counter++));
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string store_dir() const { return (path / "store").string(); }
};

std::shared_ptr<opt::TraceStore> make_store(
    const TempDir& tmp,
    opt::TraceStore::Capacity cap = opt::TraceStore::Capacity()) {
  return std::make_shared<opt::TraceStore>(tmp.store_dir(),
                                           /*read_only=*/false, cap);
}

TEST(PlanService, ConcurrentClientsMatchEachOtherAndDirectPlan) {
  TempDir tmp;
  PlanningService service({make_store(tmp), /*jobs=*/1, nullptr, nullptr});
  PlanRequest req;
  req.scenario = "mpeg2-tiny";

  constexpr int kClients = 4;
  std::vector<PlanResponse> responses(kClients);
  {
    std::vector<std::thread> pool;
    for (int c = 0; c < kClients; ++c)
      pool.emplace_back([&, c] { responses[c] = service.plan(req); });
    for (auto& t : pool) t.join();
  }
  for (const PlanResponse& r : responses) {
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_TRUE(r.assignment.feasible);
    EXPECT_TRUE(r.assignment.identical(responses[0].assignment));
    ASSERT_EQ(r.captures.size(), 1u);  // mpeg2-tiny: profile_runs == 1
  }

  // Identical to the plan a direct Experiment produces from the spec's
  // own (full-simulation) profiler — the service changes where captures
  // come from, never what the plan contains.
  const core::Experiment direct =
      core::scenarios().make_experiment("mpeg2-tiny");
  const opt::PartitionPlan reference = direct.plan(direct.profile());
  EXPECT_TRUE(responses[0].assignment.identical(reference));

  // Predictions come straight from the profile at the assigned sizes.
  const PlanResponse& r0 = responses[0];
  ASSERT_FALSE(r0.tasks.empty());
  for (const auto& t : r0.tasks) {
    const opt::PlanEntry* e = r0.assignment.find(t.name);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(t.sets, e->sets);
    EXPECT_EQ(t.predicted_misses, e->expected_misses);
    EXPECT_GT(t.predicted_cycles, 0.0);
  }
}

TEST(PlanService, SecondRequestHitsTheStoreAndSkipsCapture) {
  TempDir tmp;
  std::atomic<int> captures{0};
  PlanningServiceConfig cfg;
  cfg.store = make_store(tmp);
  cfg.capture_started = [&](const std::string&) { ++captures; };
  PlanningService service(std::move(cfg));

  PlanRequest req;
  req.scenario = "mpeg2-tiny";
  const PlanResponse first = service.plan(req);
  ASSERT_TRUE(first.ok) << first.error;
  EXPECT_EQ(first.captured(), 1u);
  EXPECT_EQ(captures.load(), 1);

  const PlanResponse second = service.plan(req);
  ASSERT_TRUE(second.ok) << second.error;
  EXPECT_EQ(second.captured(), 0u);
  EXPECT_EQ(second.store_hits(), 1u);
  EXPECT_EQ(captures.load(), 1);  // no new instrumented simulation
  EXPECT_TRUE(second.assignment.identical(first.assignment));

  // A fresh service over the same directory models a new server process:
  // still a pure store hit.
  PlanningService other({make_store(tmp), 1, nullptr, nullptr});
  const PlanResponse warm = other.plan(req);
  ASSERT_TRUE(warm.ok) << warm.error;
  EXPECT_EQ(warm.captured(), 0u);
  EXPECT_TRUE(warm.assignment.identical(first.assignment));
}

TEST(PlanService, SingleFlightPerformsExactlyOneCapture) {
  TempDir tmp;
  std::atomic<int> captures{0};
  PlanningServiceConfig cfg;
  cfg.store = make_store(tmp);
  // Hold the single-flight leader inside the capture section long enough
  // that the other clients arrive while it is in flight; the assertion
  // below does NOT depend on this window (exactly-one-capture holds for
  // every interleaving), the delay just makes the coalesced path the
  // overwhelmingly common one.
  cfg.capture_started = [&](const std::string&) {
    ++captures;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  };
  PlanningService service(std::move(cfg));

  PlanRequest req;
  req.scenario = "mpeg2-tiny";
  constexpr int kClients = 4;
  std::vector<PlanResponse> responses(kClients);
  {
    std::vector<std::thread> pool;
    for (int c = 0; c < kClients; ++c)
      pool.emplace_back([&, c] { responses[c] = service.plan(req); });
    for (auto& t : pool) t.join();
  }

  EXPECT_EQ(captures.load(), 1);  // the single-flight guarantee
  std::uint64_t captured_total = 0;
  for (const PlanResponse& r : responses) {
    ASSERT_TRUE(r.ok) << r.error;
    captured_total += r.captured();
    EXPECT_TRUE(r.assignment.identical(responses[0].assignment));
  }
  EXPECT_EQ(captured_total, 1u);
  const ServiceStats stats = service.service_stats();
  EXPECT_EQ(stats.captured, 1u);
  // Every client either ran its own capture phase (captured / store hit /
  // capture-coalesced, one digest each) or joined a concurrent leader's
  // union sweep and never touched the store at all.
  EXPECT_EQ(stats.captured + stats.store_hits + stats.coalesced +
                stats.sweeps_coalesced,
            static_cast<std::uint64_t>(kClients));
}

TEST(PlanService, EvictionUnderTightBudgetNeverCorruptsPinnedEntries) {
  // A one-entry budget forces the two scenarios to evict each other's
  // capture on every write; requests pin their digests, so the replay
  // that follows each capture always finds its entry intact. Interleave
  // concurrent requests and verify every response against unpressured
  // references.
  TempDir tmp;
  opt::TraceStore::Capacity tight;
  tight.max_entries = 1;
  PlanningService service({make_store(tmp, tight), 1, nullptr, nullptr});

  const std::vector<std::string> names = {"mpeg2-tiny", "jpeg-canny-tiny"};
  std::vector<opt::PartitionPlan> reference;
  for (const auto& name : names) {
    const core::Experiment direct = core::scenarios().make_experiment(name);
    reference.push_back(direct.plan(direct.profile()));
  }

  constexpr int kRounds = 3;
  std::vector<std::vector<PlanResponse>> responses(
      names.size(), std::vector<PlanResponse>(kRounds));
  {
    std::vector<std::thread> pool;
    for (std::size_t n = 0; n < names.size(); ++n)
      pool.emplace_back([&, n] {
        PlanRequest req;
        req.scenario = names[n];
        for (int r = 0; r < kRounds; ++r) responses[n][r] = service.plan(req);
      });
    for (auto& t : pool) t.join();
  }
  for (std::size_t n = 0; n < names.size(); ++n)
    for (const PlanResponse& r : responses[n]) {
      ASSERT_TRUE(r.ok) << names[n] << ": " << r.error;
      EXPECT_TRUE(r.assignment.identical(reference[n])) << names[n];
    }

  // The budget did bite (both scenarios cannot stay resident at once):
  // with every pin released, gc() settles the store within it, and at
  // least one eviction must have happened along the way.
  service.gc();
  EXPECT_GT(service.store_stats().evictions, 0u);
  EXPECT_LE(service.store_stats().entries, 1u);
}

TEST(PlanService, RequestOverridesSeparateStoreEntriesAndPlans) {
  TempDir tmp;
  PlanningService service({make_store(tmp), 1, nullptr, nullptr});
  PlanRequest req;
  req.scenario = "mpeg2-tiny";
  const PlanResponse base = service.plan(req);
  ASSERT_TRUE(base.ok) << base.error;

  // A platform override changes the capture digest (the L2 config is part
  // of the content address), so the store misses and a fresh capture runs.
  PlanRequest bigger = req;
  bigger.l2_size_bytes = 64 * 1024;
  const PlanResponse big = service.plan(bigger);
  ASSERT_TRUE(big.ok) << big.error;
  EXPECT_EQ(big.captured(), 1u);
  EXPECT_NE(big.captures[0].digest, base.captures[0].digest);
  EXPECT_EQ(big.assignment.total_sets, base.assignment.total_sets * 2);

  // A grid override replays the SAME capture (the digest does not depend
  // on the sweep grid) at different candidate sizes.
  PlanRequest coarse = req;
  coarse.grid = {1, 8};
  const PlanResponse small = service.plan(coarse);
  ASSERT_TRUE(small.ok) << small.error;
  EXPECT_EQ(small.captured(), 0u);
  EXPECT_EQ(small.captures[0].digest, base.captures[0].digest);
  for (const auto& t : small.tasks) EXPECT_TRUE(t.sets == 1 || t.sets == 8);
}

TEST(PlanService, FailuresComeBackAsErrorResponses) {
  TempDir tmp;
  PlanningService service({make_store(tmp), 1, nullptr, nullptr});

  PlanRequest unknown;
  unknown.scenario = "no-such-scenario";
  const PlanResponse r1 = service.plan(unknown);
  EXPECT_FALSE(r1.ok);
  EXPECT_NE(r1.error.find("unknown scenario"), std::string::npos) << r1.error;

  PlanRequest bad_grid;
  bad_grid.scenario = "mpeg2-tiny";
  bad_grid.grid = {4, 0, 8};
  const PlanResponse r2 = service.plan(bad_grid);
  EXPECT_FALSE(r2.ok);
  EXPECT_NE(r2.error.find("size 0"), std::string::npos) << r2.error;

  // An L2 override below one set would divide by zero in the cache model.
  PlanRequest tiny_l2;
  tiny_l2.scenario = "mpeg2-tiny";
  tiny_l2.l2_size_bytes = 64;  // < line_bytes * ways
  const PlanResponse r4 = service.plan(tiny_l2);
  EXPECT_FALSE(r4.ok);
  EXPECT_NE(r4.error.find("smaller than one set"), std::string::npos)
      << r4.error;

  // A scenario without a trace_key cannot be content-addressed.
  static bool registered = false;
  if (!registered) {
    core::ScenarioSpec spec;
    spec.name = "svc-no-key";
    spec.description = "planning-service error-path fixture";
    spec.factory = [] { return apps::make_m2v_app(apps::AppConfig::tiny()); };
    core::scenarios().add(std::move(spec));
    registered = true;
  }
  PlanRequest keyless;
  keyless.scenario = "svc-no-key";
  const PlanResponse r3 = service.plan(keyless);
  EXPECT_FALSE(r3.ok);
  EXPECT_NE(r3.error.find("trace_key"), std::string::npos) << r3.error;

  // Non-finite eps would poison the plan-cache key and the curvature
  // comparisons; it must be a request error, not undefined behavior.
  PlanRequest bad_eps;
  bad_eps.scenario = "mpeg2-tiny";
  bad_eps.curvature_eps = std::numeric_limits<double>::quiet_NaN();
  const PlanResponse r5 = service.plan(bad_eps);
  EXPECT_FALSE(r5.ok);
  EXPECT_NE(r5.error.find("finite"), std::string::npos) << r5.error;

  EXPECT_THROW(PlanningService({nullptr, 1, nullptr, nullptr}), std::invalid_argument);
}

TEST(PlanService, ReadOnlyStoreReportsDeferredCapturesHonestly) {
  // BUGFIX regression (ro-store provenance): ensure_capture over a
  // read-only store used to report kCaptured without having simulated
  // anything — capture_ms read ~0 while profile_ms silently absorbed the
  // capture cost and the capture_started hook never fired. The ro
  // contract now: provenance kDeferred, service_stats().deferred counts
  // it, captured stays 0 and the hook stays silent.
  TempDir tmp;
  fs::create_directories(tmp.store_dir());  // ro stores don't create dirs
  std::atomic<int> hook_fired{0};
  PlanningServiceConfig cfg;
  cfg.store = std::make_shared<opt::TraceStore>(tmp.store_dir(),
                                                /*read_only=*/true);
  cfg.capture_started = [&](const std::string&) { ++hook_fired; };
  PlanningService service(std::move(cfg));

  PlanRequest req;
  req.scenario = "mpeg2-tiny";
  const PlanResponse resp = service.plan(req);
  ASSERT_TRUE(resp.ok) << resp.error;
  ASSERT_EQ(resp.captures.size(), 1u);
  EXPECT_EQ(resp.captures[0].source, CaptureSource::kDeferred);
  EXPECT_EQ(resp.deferred(), 1u);
  EXPECT_EQ(resp.captured(), 0u);   // nothing was simulated at capture time
  EXPECT_EQ(resp.store_hits(), 0u);
  EXPECT_EQ(hook_fired.load(), 0);  // no store-persisted capture started
  const ServiceStats stats = service.service_stats();
  EXPECT_EQ(stats.deferred, 1u);
  EXPECT_EQ(stats.captured, 0u);
  // The simulation really ran — inside profile() — and produced the same
  // plan a read-write service computes.
  const core::Experiment direct =
      core::scenarios().make_experiment("mpeg2-tiny");
  EXPECT_TRUE(resp.assignment.identical(direct.plan(direct.profile())));

  // Prewarmed ro store: the same request is then an honest store hit.
  {
    PlanningService warmer({std::make_shared<opt::TraceStore>(
                                tmp.store_dir(), false),
                            1, nullptr, nullptr});
    ASSERT_TRUE(warmer.plan(req).ok);
  }
  const PlanResponse warm = service.plan(req);
  ASSERT_TRUE(warm.ok) << warm.error;
  EXPECT_EQ(warm.captures[0].source, CaptureSource::kStoreHit);
  EXPECT_EQ(warm.deferred(), 0u);
}

TEST(PlanService, PlanCacheServesRepeatRequestsWithoutStoreOrSolver) {
  TempDir tmp;
  PlanningServiceConfig cfg;
  cfg.store = make_store(tmp);
  cfg.plan_cache = std::make_shared<opt::PlanCache>(opt::PlanCache::Config{});
  PlanningService service(std::move(cfg));

  PlanRequest req;
  req.scenario = "mpeg2-tiny";
  const PlanResponse computed = service.plan(req);
  ASSERT_TRUE(computed.ok) << computed.error;
  EXPECT_EQ(computed.plan_source, PlanSource::kComputed);

  const opt::TraceStore::Stats store_before = service.store_stats();
  const PlanResponse cached = service.plan(req);
  ASSERT_TRUE(cached.ok) << cached.error;
  // A cache hit is a pure lookup: no pin, no store probe, no replay, no
  // MCKP solve — and a bit-identical response.
  EXPECT_EQ(cached.plan_source, PlanSource::kCache);
  EXPECT_EQ(cached.captured(), 0u);
  EXPECT_EQ(cached.store_hits(), 0u);
  ASSERT_EQ(cached.captures.size(), 1u);
  EXPECT_EQ(cached.captures[0].source, CaptureSource::kPlanCached);
  EXPECT_EQ(cached.captures[0].digest, computed.captures[0].digest);
  EXPECT_EQ(cached.profile_ms, 0.0);
  EXPECT_EQ(cached.plan_ms, 0.0);
  EXPECT_TRUE(cached.assignment.identical(computed.assignment));
  ASSERT_EQ(cached.tasks.size(), computed.tasks.size());
  for (std::size_t i = 0; i < cached.tasks.size(); ++i) {
    EXPECT_EQ(cached.tasks[i].name, computed.tasks[i].name);
    EXPECT_EQ(cached.tasks[i].sets, computed.tasks[i].sets);
    EXPECT_EQ(cached.tasks[i].predicted_misses,
              computed.tasks[i].predicted_misses);
    EXPECT_EQ(cached.tasks[i].predicted_cycles,
              computed.tasks[i].predicted_cycles);
  }
  const opt::TraceStore::Stats store_after = service.store_stats();
  EXPECT_EQ(store_after.hits, store_before.hits);
  EXPECT_EQ(store_after.misses, store_before.misses);
  EXPECT_EQ(service.service_stats().plan_cache_hits, 1u);
  EXPECT_EQ(service.plan_cache_stats().hits, 1u);
}

TEST(PlanService, PlanCacheKeySeparatesRequestVariants) {
  TempDir tmp;
  PlanningServiceConfig cfg;
  cfg.store = make_store(tmp);
  cfg.plan_cache = std::make_shared<opt::PlanCache>(opt::PlanCache::Config{});
  PlanningService service(std::move(cfg));

  PlanRequest req;
  req.scenario = "mpeg2-tiny";
  ASSERT_TRUE(service.plan(req).ok);

  // Each override must address a DIFFERENT plan entry (never serve the
  // base plan), and repeating it must hit its own entry.
  std::vector<PlanRequest> variants;
  variants.push_back(req);
  variants.back().grid = {1, 8};
  variants.push_back(req);
  variants.back().runs = 2;
  variants.push_back(req);
  variants.back().l2_size_bytes = 64 * 1024;
  variants.push_back(req);
  variants.back().curvature_eps = 0.25;

  for (const PlanRequest& v : variants) {
    const PlanResponse first = service.plan(v);
    ASSERT_TRUE(first.ok) << first.error;
    EXPECT_EQ(first.plan_source, PlanSource::kComputed);
    const PlanResponse second = service.plan(v);
    ASSERT_TRUE(second.ok) << second.error;
    EXPECT_EQ(second.plan_source, PlanSource::kCache);
    EXPECT_TRUE(second.assignment.identical(first.assignment));
  }
}

TEST(PlanService, PlanCacheDiskTierSurvivesProcessRestart) {
  TempDir tmp;
  const auto disk_cache = [&] {
    opt::PlanCache::Config cfg;
    cfg.dir = tmp.store_dir();
    return std::make_shared<opt::PlanCache>(std::move(cfg));
  };
  PlanRequest req;
  req.scenario = "mpeg2-tiny";

  PlanningService first({make_store(tmp), 1, nullptr, disk_cache()});
  const PlanResponse computed = first.plan(req);
  ASSERT_TRUE(computed.ok) << computed.error;

  // Fresh store + cache instances over the same directory model a new
  // server process: the plan must come off the disk tier, untouched.
  PlanningService second({make_store(tmp), 1, nullptr, disk_cache()});
  const PlanResponse warm = second.plan(req);
  ASSERT_TRUE(warm.ok) << warm.error;
  EXPECT_EQ(warm.plan_source, PlanSource::kCache);
  EXPECT_TRUE(warm.assignment.identical(computed.assignment));
  EXPECT_EQ(second.plan_cache_stats().disk_hits, 1u);
  EXPECT_EQ(second.store_stats().hits + second.store_stats().misses, 0u);
}

TEST(PlanService, TieredFreshL1ServesViaReadThroughWithZeroCaptures) {
  // Two-"process" read-through: a first service populates a shared far
  // tier by write-through; a second service with a fresh, EMPTY near
  // tier must answer the same request with ZERO captures — the trace
  // arrives from the L2 and is promoted, never re-simulated.
  const auto shared_l2 = std::make_shared<opt::MemBackend>();
  PlanRequest req;
  req.scenario = "mpeg2-tiny";
  opt::PartitionPlan first_plan;
  {
    PlanningServiceConfig cfg;
    cfg.store = std::make_shared<opt::TraceStore>(
        std::make_shared<opt::TieredBackend>(
            std::make_shared<opt::MemBackend>(), shared_l2),
        /*read_only=*/false);
    PlanningService writer(std::move(cfg));
    const PlanResponse seeded = writer.plan(req);
    ASSERT_TRUE(seeded.ok) << seeded.error;
    EXPECT_EQ(seeded.captured(), 1u);
    first_plan = seeded.assignment;
  }

  std::atomic<int> captures{0};
  const auto fresh_l1 = std::make_shared<opt::MemBackend>();
  PlanningServiceConfig cfg;
  cfg.store = std::make_shared<opt::TraceStore>(
      std::make_shared<opt::TieredBackend>(fresh_l1, shared_l2,
                                           /*l2_writable=*/false),
      /*read_only=*/false);
  cfg.capture_started = [&](const std::string&) { ++captures; };
  PlanningService reader(std::move(cfg));
  EXPECT_EQ(reader.store_stats().entries, 0u);  // near tier starts empty

  const PlanResponse resp = reader.plan(req);
  ASSERT_TRUE(resp.ok) << resp.error;
  EXPECT_EQ(resp.captured(), 0u);
  EXPECT_EQ(resp.store_hits(), 1u);
  EXPECT_EQ(captures.load(), 0);  // no instrumented simulation ran
  EXPECT_TRUE(resp.assignment.identical(first_plan));
  const opt::TraceStore::Stats st = reader.store_stats();
  ASSERT_TRUE(st.tiers.has_value());
  EXPECT_GE(st.tiers->l2_hits, 1u);
  EXPECT_GE(st.tiers->promotions, 1u);
  EXPECT_EQ(st.tiers->l2_writes, 0u);  // the far tier stayed read-only
}

TEST(PlanService, SharedBackendFeedsBothStoreAndPlanCache) {
  // The plan_server wiring: ONE backend behind both the trace store and
  // the plan cache's tier 2, so captures and plans ride the same
  // persistence (and the same tiering) under separate blob kinds.
  const auto backend = std::make_shared<opt::MemBackend>();
  const auto open_pair = [&](PlanningServiceConfig& cfg) {
    cfg.store = open_service_store(backend, core::TraceMode::kReadWrite);
    cfg.plan_cache = open_plan_cache(core::PlanCacheMode::kDisk, backend,
                                     core::TraceMode::kReadWrite);
  };
  PlanRequest req;
  req.scenario = "mpeg2-tiny";

  PlanningServiceConfig cfg;
  open_pair(cfg);
  PlanningService service(std::move(cfg));
  const PlanResponse computed = service.plan(req);
  ASSERT_TRUE(computed.ok) << computed.error;
  EXPECT_EQ(backend->list(opt::BlobKind::kTrace).size(), 1u);
  EXPECT_EQ(backend->list(opt::BlobKind::kPlan).size(), 1u);

  // A fresh service over the same backend models a restart: the request
  // is a pure plan-cache disk hit — the store is never even probed.
  PlanningServiceConfig cfg2;
  open_pair(cfg2);
  PlanningService second(std::move(cfg2));
  const PlanResponse warm = second.plan(req);
  ASSERT_TRUE(warm.ok) << warm.error;
  EXPECT_EQ(warm.plan_source, PlanSource::kCache);
  EXPECT_TRUE(warm.assignment.identical(computed.assignment));
  EXPECT_EQ(second.plan_cache_stats().disk_hits, 1u);
  EXPECT_EQ(second.store_stats().hits + second.store_stats().misses, 0u);
}

TEST(PlanService, ConcurrentMixedGridsCoalesceIntoOneUnionSweep) {
  TempDir tmp;
  // Disjoint AND overlapping grids; their union is what the one sweep
  // must replay.
  const std::vector<std::vector<std::uint32_t>> grids = {
      {1, 4}, {2, 8}, {4, 8, 16}, {16, 1}};
  const std::vector<std::uint32_t> union_grid = {1, 2, 4, 8, 16};
  const int kClients = static_cast<int>(grids.size());

  PlanningService* svc_ptr = nullptr;
  PlanningServiceConfig cfg;
  cfg.store = make_store(tmp);
  // Deterministic orchestration: whoever leads holds its sweep OPEN until
  // every other client has joined (joiners bump sweeps_coalesced at join
  // time), so this test cannot flake on scheduling. The 10s cap only
  // bounds a genuinely broken build.
  cfg.sweep_sealing = [&svc_ptr, kClients] {
    for (int spin = 0; spin < 10000; ++spin) {
      if (svc_ptr->service_stats().sweeps_coalesced ==
          static_cast<std::uint64_t>(kClients - 1))
        return;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  std::vector<std::vector<std::uint32_t>> swept;
  std::mutex swept_mu;
  cfg.sweep_started = [&](const std::string&,
                          const std::vector<std::uint32_t>& g) {
    std::lock_guard<std::mutex> lk(swept_mu);
    swept.push_back(g);
  };
  PlanningService service(std::move(cfg));
  svc_ptr = &service;

  std::vector<PlanResponse> responses(kClients);
  {
    std::vector<std::thread> pool;
    for (int c = 0; c < kClients; ++c)
      pool.emplace_back([&, c] {
        PlanRequest req;
        req.scenario = "mpeg2-tiny";
        req.grid = grids[c];
        responses[c] = service.plan(req);
      });
    for (auto& t : pool) t.join();
  }

  // Exactly ONE replay sweep, over exactly the union grid.
  const ServiceStats stats = service.service_stats();
  EXPECT_EQ(stats.sweeps_started, 1u);
  EXPECT_EQ(stats.sweeps_coalesced, static_cast<std::uint64_t>(kClients - 1));
  ASSERT_EQ(swept.size(), 1u);
  EXPECT_EQ(swept[0], union_grid);
  // 2 + 2 + 3 + 2 requested points replayed as 5 union points.
  EXPECT_EQ(stats.union_points_saved, 9u - union_grid.size());

  int leaders = 0, followers = 0;
  for (const PlanResponse& r : responses) {
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.union_points, union_grid.size());
    if (r.sweep == SweepRole::kLeader)
      ++leaders;
    else if (r.sweep == SweepRole::kCoalesced)
      ++followers;
  }
  EXPECT_EQ(leaders, 1);
  EXPECT_EQ(followers, kClients - 1);

  // BIT-IDENTITY: each coalesced response must match what an uncoalesced
  // service (fresh instance, same store, no hooks) computes for the same
  // grid — through plan_response_digest, so every assignment entry,
  // expected-miss double and prediction is compared bit-for-bit.
  PlanningService direct({make_store(tmp), 1, nullptr, nullptr});
  for (int c = 0; c < kClients; ++c) {
    PlanRequest req;
    req.scenario = "mpeg2-tiny";
    req.grid = grids[c];
    const PlanResponse ref = direct.plan(req);
    ASSERT_TRUE(ref.ok) << ref.error;
    EXPECT_EQ(ref.sweep, SweepRole::kLeader);
    EXPECT_EQ(plan_response_digest(responses[c]), plan_response_digest(ref))
        << "grid index " << c;
  }
  EXPECT_EQ(direct.service_stats().sweeps_coalesced, 0u);
}

TEST(PlanService, CoalescingStressBitIdenticalUnderLoad) {
  // The TSan target: several rounds of mixed-grid bursts with a real
  // merge window and no orchestration hooks — scheduling decides who
  // leads, who joins and who opens a second sweep; every answer must
  // still be bit-identical to the uncoalesced reference. (The exact
  // sweep count is NOT asserted here — that is the hook-orchestrated
  // test's and the socket bench's job.)
  TempDir tmp;
  const std::vector<std::vector<std::uint32_t>> grids = {
      {1, 2, 4, 8, 16}, {1, 4, 16}, {2, 8}, {4, 8, 16}};

  PlanningService reference({make_store(tmp), 1, nullptr, nullptr});
  std::vector<std::string> want;
  for (const auto& g : grids) {
    PlanRequest req;
    req.scenario = "mpeg2-tiny";
    req.grid = g;
    const PlanResponse r = reference.plan(req);
    ASSERT_TRUE(r.ok) << r.error;
    want.push_back(plan_response_digest(r));
  }

  PlanningServiceConfig cfg;
  cfg.store = make_store(tmp);
  cfg.coalesce_window_ms = 5.0;
  PlanningService service(std::move(cfg));
  constexpr int kRounds = 3;
  constexpr int kThreads = 8;
  for (int round = 0; round < kRounds; ++round) {
    std::vector<PlanResponse> responses(kThreads);
    std::vector<std::thread> pool;
    for (int t = 0; t < kThreads; ++t)
      pool.emplace_back([&, t] {
        PlanRequest req;
        req.scenario = "mpeg2-tiny";
        req.grid = grids[t % grids.size()];
        responses[t] = service.plan(req);
      });
    for (auto& t : pool) t.join();
    for (int t = 0; t < kThreads; ++t) {
      ASSERT_TRUE(responses[t].ok) << responses[t].error;
      EXPECT_EQ(plan_response_digest(responses[t]), want[t % grids.size()])
          << "round " << round << " thread " << t;
    }
  }
  const ServiceStats stats = service.service_stats();
  EXPECT_GE(stats.sweeps_started, 1u);
  EXPECT_EQ(stats.sweeps_started + stats.sweeps_coalesced,
            static_cast<std::uint64_t>(kRounds * kThreads));
}

TEST(PlanService, AdaptiveWindowSealsEarlyForLoneRequests) {
  // BUGFIX regression: a fixed coalesce window made every cache-missing
  // sweep's leader sleep out the WHOLE window even when no other request
  // existed — a lone request against a 10s window paid 10s of pure
  // latency. The window now adapts to the arrival rate: no join for a
  // quiet gap (window/4, clamped to [1,50] ms) seals the sweep early, so
  // a lone request pays roughly the gap while a burst still merges.
  TempDir tmp;
  PlanningServiceConfig cfg;
  cfg.store = make_store(tmp);
  cfg.coalesce_window_ms = 10000.0;  // fixed-hold behavior would take 10s
  PlanningService service(std::move(cfg));

  PlanRequest req;
  req.scenario = "mpeg2-tiny";
  const PlanResponse resp = service.plan(req);
  ASSERT_TRUE(resp.ok) << resp.error;
  EXPECT_EQ(resp.sweep, SweepRole::kLeader);
  // Sealed early: far below the window (generous bound — the gap is
  // 50 ms; seconds here would mean the fixed hold is back).
  EXPECT_LT(resp.total_ms, 5000.0);
  const ServiceStats stats = service.service_stats();
  EXPECT_EQ(stats.sweeps_started, 1u);
  EXPECT_EQ(stats.sweeps_sealed_early, 1u);

  // Same answer as an unwindowed service — the window trades latency
  // only, never the response.
  PlanningService direct({make_store(tmp), 1, nullptr, nullptr});
  const PlanResponse ref = direct.plan(req);
  ASSERT_TRUE(ref.ok) << ref.error;
  EXPECT_EQ(plan_response_digest(resp), plan_response_digest(ref));
}

TEST(PlanService, DuplicateGridSizesAreRejectedAsRequestErrors) {
  TempDir tmp;
  PlanningService service({make_store(tmp), 1, nullptr, nullptr});
  PlanRequest req;
  req.scenario = "mpeg2-tiny";
  req.grid = {4, 2, 4};
  const PlanResponse resp = service.plan(req);
  EXPECT_FALSE(resp.ok);
  EXPECT_NE(resp.error.find("duplicate"), std::string::npos) << resp.error;
}

TEST(PlanProtocol, ParsesFullRequests) {
  PlanRequest req;
  std::string err;
  ASSERT_TRUE(parse_plan_request("mpeg2-tiny grid=1,2,8 runs=2 l2=32768 "
                                 "eps=0.5",
                                 req, err))
      << err;
  EXPECT_EQ(req.scenario, "mpeg2-tiny");
  EXPECT_EQ(req.grid, (std::vector<std::uint32_t>{1, 2, 8}));
  ASSERT_TRUE(req.runs.has_value());
  EXPECT_EQ(*req.runs, 2u);
  ASSERT_TRUE(req.l2_size_bytes.has_value());
  EXPECT_EQ(*req.l2_size_bytes, 32768u);
  ASSERT_TRUE(req.curvature_eps.has_value());
  EXPECT_EQ(*req.curvature_eps, 0.5);

  PlanRequest bare;
  ASSERT_TRUE(parse_plan_request("jpeg-canny", bare, err)) << err;
  EXPECT_EQ(bare.scenario, "jpeg-canny");
  EXPECT_TRUE(bare.grid.empty());
  EXPECT_FALSE(bare.curvature_eps.has_value());
}

TEST(PlanProtocol, RejectsMalformedValues) {
  const auto fails = [](const std::string& line) {
    PlanRequest req;
    std::string err;
    const bool ok = parse_plan_request(line, req, err);
    EXPECT_FALSE(ok) << line << " parsed unexpectedly";
    return err;
  };
  EXPECT_NE(fails("").find("scenario"), std::string::npos);
  EXPECT_NE(fails("s grid=1,x,2").find("grid"), std::string::npos);
  EXPECT_NE(fails("s grid=").find("grid"), std::string::npos);
  EXPECT_NE(fails("s runs=+2").find("runs"), std::string::npos);
  EXPECT_NE(fails("s l2=64k").find("l2"), std::string::npos);
  EXPECT_NE(fails("s bogus=1").find("unknown option"), std::string::npos);
}

TEST(PlanProtocol, RejectsNonFiniteAndNegativeEps) {
  // BUGFIX regression: strtod happily parses all of these; "-1" would
  // silently alias the auto-tune sentinel (kAutoCurvatureEps) instead of
  // erroring, and nan/inf would poison the planner and plan-cache key.
  for (const char* bad :
       {"s eps=-1", "s eps=-0.5", "s eps=nan", "s eps=NaN", "s eps=inf",
        "s eps=-inf", "s eps=1e999", "s eps=", "s eps=0.5x"}) {
    PlanRequest req;
    std::string err;
    EXPECT_FALSE(parse_plan_request(bad, req, err)) << bad;
    EXPECT_NE(err.find("eps"), std::string::npos) << bad << ": " << err;
  }
  // Zero and positive finite values are legal.
  for (const char* good : {"s eps=0", "s eps=0.05", "s eps=2"}) {
    PlanRequest req;
    std::string err;
    EXPECT_TRUE(parse_plan_request(good, req, err)) << good << ": " << err;
  }
}

TEST(PlanProtocol, RejectsRepeatedOptions) {
  // Last-one-wins would silently serve a different plan than the client
  // meant (and which one "wins" would be an accident of parse order), so
  // every repeat is an explicit request error naming the key.
  for (const char* bad :
       {"s grid=1,2 grid=4", "s runs=1 runs=2", "s l2=32768 l2=65536",
        "s eps=0.1 eps=0.1", "s deadline_ms=5 deadline_ms=5",
        "s grid=1 runs=2 grid=1"}) {
    PlanRequest req;
    std::string err;
    EXPECT_FALSE(parse_plan_request(bad, req, err)) << bad;
    EXPECT_NE(err.find("repeated option"), std::string::npos)
        << bad << ": " << err;
  }
  // A repeat of one key must not poison a different key.
  PlanRequest req;
  std::string err;
  EXPECT_TRUE(parse_plan_request("s grid=1,2 runs=2", req, err)) << err;
}

TEST(PlanProtocol, ParsesPhasedRequests) {
  PlanRequest req;
  std::string err;
  ASSERT_TRUE(parse_plan_request("stream-tiny phases=all", req, err)) << err;
  EXPECT_EQ(req.scenario, "stream-tiny");
  EXPECT_TRUE(req.phases);

  PlanRequest bare;
  ASSERT_TRUE(parse_plan_request("stream-tiny", bare, err)) << err;
  EXPECT_FALSE(bare.phases);

  // Only the explicit form is accepted — a future "phases=0,2" must not
  // silently mean something else today.
  for (const char* bad : {"s phases=", "s phases=1", "s phases=0,2",
                          "s phases=ALL", "s phases"}) {
    PlanRequest r;
    EXPECT_FALSE(parse_plan_request(bad, r, err)) << bad;
    EXPECT_NE(err.find("phases"), std::string::npos) << bad << ": " << err;
  }
  PlanRequest repeated;
  EXPECT_FALSE(
      parse_plan_request("s phases=all phases=all", repeated, err));
  EXPECT_NE(err.find("repeated option"), std::string::npos) << err;
}

TEST(PlanProtocol, ParsesAdmissionDeadline) {
  PlanRequest req;
  std::string err;
  ASSERT_TRUE(parse_plan_request("mpeg2-tiny deadline_ms=250", req, err))
      << err;
  ASSERT_TRUE(req.deadline_ms.has_value());
  EXPECT_EQ(*req.deadline_ms, 250u);

  PlanRequest bare;
  ASSERT_TRUE(parse_plan_request("mpeg2-tiny", bare, err)) << err;
  EXPECT_FALSE(bare.deadline_ms.has_value());

  for (const char* bad : {"s deadline_ms=", "s deadline_ms=-1",
                          "s deadline_ms=5s", "s deadline_ms=1e3"}) {
    PlanRequest r;
    EXPECT_FALSE(parse_plan_request(bad, r, err)) << bad;
    EXPECT_NE(err.find("deadline_ms"), std::string::npos)
        << bad << ": " << err;
  }
}

TEST(PlanProtocol, ResponseDigestSeparatesAnswersBitForBit) {
  // The JSON wire rounds floats for humans; plan_response_digest is the
  // machine-grade identity the coalescing bench compares. It must be
  // stable across identical responses and move on ANY bit of the
  // assignment, totals or predictions — including a double changed past
  // the JSON rounding.
  PlanResponse a;
  a.scenario = "s";
  a.assignment.feasible = true;
  a.assignment.total_sets = 64;
  a.assignment.used_sets = 48;
  a.assignment.expected_task_misses = 123.25;
  opt::PlanEntry e;
  e.name = "task0";
  e.is_task = true;
  e.sets = 16;
  e.expected_misses = 100.5;
  e.partition.base_set = 0;
  e.partition.num_sets = 16;
  a.assignment.entries.push_back(e);
  a.tasks.push_back(PlanResponse::TaskPrediction{"task0", 16, 100.5, 2e6});

  PlanResponse b = a;
  EXPECT_EQ(plan_response_digest(a), plan_response_digest(b));

  b.assignment.entries[0].expected_misses =
      std::nextafter(100.5, std::numeric_limits<double>::infinity());
  EXPECT_NE(plan_response_digest(a), plan_response_digest(b));

  PlanResponse c = a;
  c.assignment.entries[0].partition.base_set = 1;
  EXPECT_NE(plan_response_digest(a), plan_response_digest(c));

  PlanResponse d = a;
  d.tasks[0].predicted_cycles = 2e6 + 1;
  EXPECT_NE(plan_response_digest(a), plan_response_digest(d));
}

}  // namespace
}  // namespace cms::svc
