// Unit tests for the set-associative cache model.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "mem/cache.hpp"

namespace cms::mem {
namespace {

CacheConfig small_cache(std::uint32_t sets = 4, std::uint32_t ways = 2,
                        std::uint32_t line = 64) {
  CacheConfig cfg;
  cfg.line_bytes = line;
  cfg.ways = ways;
  cfg.size_bytes = sets * ways * line;
  return cfg;
}

TEST(CacheConfig, GeometryAndValidity) {
  CacheConfig cfg = cake_l2_config();
  EXPECT_TRUE(cfg.valid());
  EXPECT_EQ(cfg.num_sets(), 2048u);  // 512KB / (64B * 4)
  cfg.line_bytes = 48;               // not a power of two
  EXPECT_FALSE(cfg.valid());
}

TEST(Cache, FirstAccessIsColdMiss) {
  SetAssocCache cache(small_cache());
  const auto r = cache.access(0x1000, AccessType::kRead, ClientId::task(1));
  EXPECT_FALSE(r.hit);
  EXPECT_TRUE(r.cold);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().cold_misses, 1u);
}

TEST(Cache, SecondAccessHits) {
  SetAssocCache cache(small_cache());
  cache.access(0x1000, AccessType::kRead, ClientId::task(1));
  const auto r = cache.access(0x1004, AccessType::kRead, ClientId::task(1));
  EXPECT_TRUE(r.hit);  // same line
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(Cache, ConflictMissAfterEviction) {
  // 4 sets, 2 ways: three lines mapping to the same set evict the LRU one.
  SetAssocCache cache(small_cache(4, 2));
  const Addr stride = 4 * 64;  // same set
  cache.access(0 * stride, AccessType::kRead, ClientId::task(1));
  cache.access(1 * stride, AccessType::kRead, ClientId::task(1));
  cache.access(2 * stride, AccessType::kRead, ClientId::task(1));  // evicts line 0
  const auto r = cache.access(0, AccessType::kRead, ClientId::task(1));
  EXPECT_FALSE(r.hit);
  EXPECT_FALSE(r.cold);  // seen before: conflict, not cold
}

TEST(Cache, LruKeepsRecentlyUsed) {
  SetAssocCache cache(small_cache(1, 2));
  cache.access(0 * 64, AccessType::kRead, ClientId::task(1));
  cache.access(1 * 64, AccessType::kRead, ClientId::task(1));
  cache.access(0 * 64, AccessType::kRead, ClientId::task(1));  // touch 0 again
  cache.access(2 * 64, AccessType::kRead, ClientId::task(1));  // evicts 1
  EXPECT_TRUE(cache.access(0 * 64, AccessType::kRead, ClientId::task(1)).hit);
  EXPECT_FALSE(cache.access(1 * 64, AccessType::kRead, ClientId::task(1)).hit);
}

TEST(Cache, FifoEvictsInsertionOrder) {
  CacheConfig cfg = small_cache(1, 2);
  cfg.replacement = Replacement::kFifo;
  SetAssocCache cache(cfg);
  cache.access(0 * 64, AccessType::kRead, ClientId::task(1));
  cache.access(1 * 64, AccessType::kRead, ClientId::task(1));
  cache.access(0 * 64, AccessType::kRead, ClientId::task(1));  // no effect on FIFO
  cache.access(2 * 64, AccessType::kRead, ClientId::task(1));  // evicts 0
  EXPECT_FALSE(cache.access(0 * 64, AccessType::kRead, ClientId::task(1)).hit);
}

TEST(Cache, WriteBackMarksDirtyAndWritesBack) {
  SetAssocCache cache(small_cache(1, 1));
  cache.access(0 * 64, AccessType::kWrite, ClientId::task(1));
  const auto r = cache.access(1 * 64, AccessType::kRead, ClientId::task(1));
  EXPECT_TRUE(r.writeback);
  EXPECT_EQ(r.victim_line, 0u);
  EXPECT_EQ(cache.stats().writebacks, 1u);
}

TEST(Cache, CleanEvictionHasNoWriteback) {
  SetAssocCache cache(small_cache(1, 1));
  cache.access(0 * 64, AccessType::kRead, ClientId::task(1));
  const auto r = cache.access(1 * 64, AccessType::kRead, ClientId::task(1));
  EXPECT_FALSE(r.writeback);
}

TEST(Cache, WriteThroughNoAllocateBypassesOnMiss) {
  CacheConfig cfg = small_cache();
  cfg.write_policy = WritePolicy::kWriteThroughNoAllocate;
  SetAssocCache cache(cfg);
  cache.access(0x0, AccessType::kWrite, ClientId::task(1));
  EXPECT_EQ(cache.occupancy(), 0u);  // no allocation on write miss
  // Read allocates; a subsequent write hit keeps the line clean.
  cache.access(0x0, AccessType::kRead, ClientId::task(1));
  cache.access(0x0, AccessType::kWrite, ClientId::task(1));
  const std::uint64_t dirty = cache.flush();
  EXPECT_EQ(dirty, 0u);
}

TEST(Cache, FlushInvalidatesEverything) {
  SetAssocCache cache(small_cache());
  cache.access(0x0, AccessType::kWrite, ClientId::task(1));
  cache.access(0x1000, AccessType::kRead, ClientId::task(1));
  EXPECT_EQ(cache.occupancy(), 2u);
  const std::uint64_t dirty = cache.flush();
  EXPECT_EQ(dirty, 1u);
  EXPECT_EQ(cache.occupancy(), 0u);
  EXPECT_FALSE(cache.access(0x0, AccessType::kRead, ClientId::task(1)).hit);
}

TEST(Cache, FlushClientOnlyRemovesThatClient) {
  SetAssocCache cache(small_cache(8, 2));
  cache.access(0x0, AccessType::kRead, ClientId::task(1));
  cache.access(0x40, AccessType::kRead, ClientId::task(2));
  cache.flush_client(ClientId::task(1));
  EXPECT_FALSE(cache.access(0x0, AccessType::kRead, ClientId::task(1)).hit);
  EXPECT_TRUE(cache.access(0x40, AccessType::kRead, ClientId::task(2)).hit);
}

TEST(Cache, EvictionByOtherClientCounted) {
  SetAssocCache cache(small_cache(1, 1));
  cache.access(0 * 64, AccessType::kRead, ClientId::task(1));
  cache.access(1 * 64, AccessType::kRead, ClientId::task(2));  // evicts task 1's line
  EXPECT_EQ(cache.stats().evictions_by_other, 1u);
}

TEST(Cache, CrossClientHitKeepsInsertionOwnership) {
  // Regression: the hit path used to rewrite line->owner to the hitting
  // client, so after a cross-client hit the line was charged to the
  // borrower — occupancy_of moved and the original owner's later
  // eviction was no longer counted as eviction-by-other.
  SetAssocCache cache(small_cache(1, 2));  // one set, two ways
  cache.access(0 * 64, AccessType::kRead, ClientId::task(1));
  cache.access(0 * 64, AccessType::kRead, ClientId::task(2));  // borrow hit
  EXPECT_EQ(cache.occupancy_of(ClientId::task(1)), 1u);
  EXPECT_EQ(cache.occupancy_of(ClientId::task(2)), 0u);

  // Fill the second way and evict task 1's line with a third client: the
  // eviction must count as by-other with task 1 as the victim owner.
  cache.access(1 * 64, AccessType::kRead, ClientId::task(3));
  const AccessResult res =
      cache.access(2 * 64, AccessType::kRead, ClientId::task(3));
  EXPECT_FALSE(res.hit);
  EXPECT_EQ(res.victim_owner, ClientId::task(1));  // LRU victim = line 0
  EXPECT_EQ(cache.stats().evictions_by_other, 1u);
}

TEST(Cache, OccupancyPerClient) {
  SetAssocCache cache(small_cache(8, 2));
  cache.access(0x0, AccessType::kRead, ClientId::task(1));
  cache.access(0x40, AccessType::kRead, ClientId::task(1));
  cache.access(0x80, AccessType::kRead, ClientId::task(2));
  EXPECT_EQ(cache.occupancy_of(ClientId::task(1)), 2u);
  EXPECT_EQ(cache.occupancy_of(ClientId::task(2)), 1u);
}

TEST(Cache, AccessAtRespectsExplicitIndex) {
  SetAssocCache cache(small_cache(4, 1));
  // Install the same line address at two different set indices; both can
  // coexist (this is exactly what partitioned index translation exploits).
  cache.access_at(0, 0x1000, AccessType::kRead, ClientId::task(1));
  cache.access_at(1, 0x1000, AccessType::kRead, ClientId::task(2));
  EXPECT_TRUE(cache.contains(0, 0x1000));
  EXPECT_TRUE(cache.contains(1, 0x1000));
  EXPECT_EQ(cache.occupancy(), 2u);
}

// ---- Property: LRU inclusion (stack property). A larger-associativity
// cache with the same sets hits whenever the smaller one hits. ----

class LruStackProperty : public ::testing::TestWithParam<int> {};

TEST_P(LruStackProperty, BiggerAssociativityIsNeverWorse) {
  const int seed = GetParam();
  CacheConfig small = small_cache(4, 2);
  CacheConfig big = small_cache(4, 4);
  SetAssocCache c_small(small), c_big(big);
  Rng rng(static_cast<std::uint64_t>(seed));
  for (int i = 0; i < 4000; ++i) {
    // Restrict to a fixed set so both caches see identical indices.
    const std::uint32_t set = static_cast<std::uint32_t>(rng.below(4));
    const Addr tag = rng.below(16);
    const Addr addr = (tag * 4 + set) * 64;
    const auto rs = c_small.access_at(set, addr, AccessType::kRead, ClientId::task(1));
    const auto rb = c_big.access_at(set, addr, AccessType::kRead, ClientId::task(1));
    if (rs.hit) {
      EXPECT_TRUE(rb.hit) << "inclusion violated at access " << i;
    }
  }
  EXPECT_GE(c_big.stats().hits, c_small.stats().hits);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LruStackProperty, ::testing::Range(0, 8));

// ---- Property: miss count is deterministic for a given seed. ----

// ---- Property: kRandom victim streams are per-client, counter-based. ----
//
// The n-th random replacement of a client depends only on (seed, client,
// n) — interleaved traffic from OTHER clients (in other sets) must not
// perturb it. This is the property that makes kRandom trace-replayable
// (opt/trace.hpp).

TEST(Cache, RandomReplacementIndependentOfInterleavedClients) {
  CacheConfig cfg = small_cache(2, 4);
  cfg.replacement = Replacement::kRandom;

  const auto a_addr = [&](int i) {
    // Client A cycles 8 distinct lines through set 0 (8 lines > 4 ways).
    return static_cast<Addr>((i % 8) * 2) * cfg.line_bytes;
  };

  // Alone: client A hammers set 0.
  SetAssocCache alone(cfg, 7);
  std::vector<bool> alone_hits;
  for (int i = 0; i < 400; ++i)
    alone_hits.push_back(
        alone.access_at(0, a_addr(i), AccessType::kRead, ClientId::task(1))
            .hit);

  // Interleaved: client B thrashes set 1 between every A access. Under a
  // shared RNG stream B's replacements would advance A's sequence; with
  // counter-based per-client streams A's outcomes are bit-identical.
  SetAssocCache mixed(cfg, 7);
  std::vector<bool> mixed_hits;
  for (int i = 0; i < 400; ++i) {
    mixed_hits.push_back(
        mixed.access_at(0, a_addr(i), AccessType::kRead, ClientId::task(1))
            .hit);
    for (int j = 0; j < 3; ++j)
      mixed.access_at(1,
                      static_cast<Addr>((i * 3 + j) * 2 + 1) * cfg.line_bytes,
                      AccessType::kRead, ClientId::task(2));
  }
  EXPECT_EQ(alone_hits, mixed_hits);
}

TEST(Cache, DeterministicForFixedSeed) {
  for (const Replacement repl :
       {Replacement::kLru, Replacement::kFifo, Replacement::kRandom}) {
    CacheConfig cfg = small_cache(16, 4);
    cfg.replacement = repl;
    SetAssocCache a(cfg, 7), b(cfg, 7);
    Rng rng(42);
    std::uint64_t misses_a = 0, misses_b = 0;
    for (int i = 0; i < 5000; ++i) {
      const Addr addr = rng.below(1 << 16) & ~63ull;
      misses_a += a.access(addr, AccessType::kRead, ClientId::task(0)).hit ? 0 : 1;
      misses_b += b.access(addr, AccessType::kRead, ClientId::task(0)).hit ? 0 : 1;
    }
    EXPECT_EQ(misses_a, misses_b);
  }
}

}  // namespace
}  // namespace cms::mem
