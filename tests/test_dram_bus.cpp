// Tests for the banked DRAM and shared bus timing models.
#include <gtest/gtest.h>

#include "mem/bus.hpp"
#include "mem/dram.hpp"

namespace cms::mem {
namespace {

TEST(Dram, SameBankSerializes) {
  DramConfig cfg;
  cfg.num_banks = 4;
  cfg.access_latency = 60;
  cfg.bank_occupancy = 12;
  Dram dram(cfg);
  const Cycle t1 = dram.access(0x0, 100);   // bank 0
  const Cycle t2 = dram.access(0x100, 100); // 0x100/64 % 4 = bank 0
  EXPECT_EQ(t1, 160u);
  EXPECT_EQ(t2, 100 + 12 + 60u);  // waits for occupancy
  EXPECT_EQ(dram.total_wait(), 12u);
}

TEST(Dram, DifferentBanksProceedInParallel) {
  Dram dram(DramConfig{});
  const Cycle t1 = dram.access(0x00, 100);  // bank 0
  const Cycle t2 = dram.access(0x40, 100);  // bank 1
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(dram.total_wait(), 0u);
}

TEST(Dram, BankMapping) {
  DramConfig cfg;
  cfg.num_banks = 4;
  cfg.interleave_bytes = 64;
  Dram dram(cfg);
  EXPECT_EQ(dram.bank_of(0x00), 0u);
  EXPECT_EQ(dram.bank_of(0x40), 1u);
  EXPECT_EQ(dram.bank_of(0x80), 2u);
  EXPECT_EQ(dram.bank_of(0xC0), 3u);
  EXPECT_EQ(dram.bank_of(0x100), 0u);
}

TEST(Dram, IdleBankIncursNoWait) {
  Dram dram(DramConfig{});
  dram.access(0x0, 100);
  // Long after the occupancy window, no wait.
  const Cycle t = dram.access(0x100, 1000);
  EXPECT_EQ(t, 1000 + DramConfig{}.access_latency);
}

TEST(Bus, GrantsImmediatelyWhenFree) {
  Bus bus(BusConfig{});
  EXPECT_EQ(bus.request(100), 100 + BusConfig{}.arbitration_latency);
  EXPECT_EQ(bus.total_wait(), 0u);
}

TEST(Bus, QueuesOverlappingRequests) {
  BusConfig cfg;
  cfg.cycles_per_transaction = 4;
  cfg.arbitration_latency = 1;
  Bus bus(cfg);
  const Cycle g1 = bus.request(100);  // granted 101, busy until 105
  const Cycle g2 = bus.request(100);  // must wait
  EXPECT_EQ(g1, 101u);
  EXPECT_EQ(g2, 105u);
  EXPECT_EQ(bus.total_wait(), 4u);
  EXPECT_EQ(bus.transactions(), 2u);
}

TEST(Bus, NoContentionWhenSpacedOut) {
  BusConfig cfg;
  cfg.cycles_per_transaction = 2;
  Bus bus(cfg);
  bus.request(100);
  const Cycle g = bus.request(200);
  EXPECT_EQ(g, 201u);
  EXPECT_EQ(bus.total_wait(), 0u);
}

TEST(Bus, StatsReset) {
  Bus bus(BusConfig{});
  bus.request(0);
  bus.request(0);
  bus.reset_stats();
  EXPECT_EQ(bus.transactions(), 0u);
  EXPECT_EQ(bus.total_wait(), 0u);
}

}  // namespace
}  // namespace cms::mem
