// Tests for RNG, statistics, tables and images.
#include <gtest/gtest.h>

#include <cmath>

#include "common/image.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

namespace cms {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
  bool differs = false;
  Rng a2(42);
  for (int i = 0; i < 100; ++i) differs |= a2.next_u64() != c.next_u64();
  EXPECT_TRUE(differs);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.below(17), 17u);
  EXPECT_EQ(rng.below(0), 0u);
  EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(8);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RunningStats, MatchesDirectComputation) {
  RunningStats s;
  const double xs[] = {1, 2, 3, 4, 5, 6, 7, 8};
  for (const double x : xs) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_DOUBLE_EQ(s.sum(), 36.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 8.0);
  EXPECT_NEAR(s.variance(), 6.0, 1e-12);  // sample variance of 1..8
}

TEST(RunningStats, MergeEqualsCombinedStream) {
  Rng rng(10);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double() * 100;
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(Histogram, CountsAndQuantiles) {
  Histogram h(0, 100, 10);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  h.add(-5);
  h.add(200);
  EXPECT_EQ(h.total(), 102u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  // 102 samples, rank ceil(51) lands at the end of bucket [40, 50).
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0);  // rank 102 is the overflow
}

TEST(Histogram, QuantileOfSmallSamples) {
  // A single sample must place every mid quantile in its bucket; the old
  // truncated target (uint64(q * total) == 0) returned lo_ instead.
  Histogram one(0, 100, 10);
  one.add(75.0);
  EXPECT_DOUBLE_EQ(one.quantile(0.5), 80.0);  // bucket [70, 80)
  EXPECT_DOUBLE_EQ(one.quantile(1.0), 80.0);

  Histogram two(0, 100, 10);
  two.add(15.0);
  two.add(75.0);
  EXPECT_DOUBLE_EQ(two.quantile(0.5), 20.0);   // rank 1: bucket [10, 20)
  EXPECT_DOUBLE_EQ(two.quantile(0.75), 80.0);  // rank 2: bucket [70, 80)
}

TEST(Histogram, QuantileExactBoundaryRanks) {
  // 0.56 * 100 evaluates to 56.000000000000007 in IEEE double; the
  // ceiling target must still resolve to rank 56 (bucket [50, 60)),
  // not 57.
  Histogram h(0, 100, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.56), 56.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.29), 29.0);  // 0.29*100 = 28.999999...
}

TEST(Histogram, QuantileWithUnderflowMass) {
  Histogram h(0, 100, 10);
  h.add(-1);
  h.add(-2);
  h.add(-3);
  h.add(35.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);  // rank 2 sits in the underflow
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 40.0);
}

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.row().cell("x").integer(42).done();
  t.row().cell("longer-name").num(3.14159, 2).done();
  const std::string out = t.render();
  EXPECT_NE(out.find("| x           | 42    |"), std::string::npos);
  EXPECT_NE(out.find("3.14"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, ShortRowsPadded) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_EQ(t.rows()[0].size(), 3u);
}

TEST(Image, GeneratorsAreDeterministic) {
  const Image a = testimg::blocks(64, 48, 5);
  const Image b = testimg::blocks(64, 48, 5);
  const Image c = testimg::blocks(64, 48, 6);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(Image, ClampedAccess) {
  Image img(4, 4);
  img.set(0, 0, 9);
  img.set(3, 3, 7);
  EXPECT_EQ(img.at_clamped(-5, -5), 9);
  EXPECT_EQ(img.at_clamped(100, 100), 7);
}

TEST(Image, PsnrProperties) {
  const Image a = testimg::gradient(32, 32, 1);
  EXPECT_DOUBLE_EQ(psnr(a, a), 99.0);
  Image b = a;
  b.set(0, 0, static_cast<std::uint8_t>(b.at(0, 0) ^ 0xFF));
  EXPECT_LT(psnr(a, b), 99.0);
  EXPECT_GT(psnr(a, b), 20.0);  // single pixel change
  EXPECT_GT(mean_abs_diff(a, b), 0.0);
}

TEST(Image, MovingBoxesChangeOverTime) {
  const Image f0 = testimg::moving_boxes(64, 64, 0, 3);
  const Image f1 = testimg::moving_boxes(64, 64, 1, 3);
  EXPECT_NE(f0, f1);
  EXPECT_LT(mean_abs_diff(f0, f1), 60.0);  // but mostly similar
}

}  // namespace
}  // namespace cms
