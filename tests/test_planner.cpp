// Tests for the partition planner and supporting opt pieces.
#include <gtest/gtest.h>

#include <cmath>

#include "core/scenario.hpp"
#include "opt/compositionality.hpp"
#include "opt/planner.hpp"
#include "opt/power.hpp"
#include "opt/profile.hpp"

namespace cms::opt {
namespace {

mem::CacheConfig l2_256sets() {
  return mem::CacheConfig{.size_bytes = 256 * 4 * 64, .line_bytes = 64, .ways = 4};
}

std::vector<kpn::SharedBufferInfo> sample_buffers() {
  return {
      {0, "fifoA", kpn::BufferKind::kFifo, 0x1000, 64 + 16 * 64},  // 17 lines
      {1, "frame", kpn::BufferKind::kFrame, 0x8000, 16 * 1024},
      {2, "seg", kpn::BufferKind::kSegment, 0x20000, 4096},
  };
}

MissProfile sample_profile() {
  MissProfile prof;
  for (const std::string task : {"t0", "t1"}) {
    double misses = task == "t0" ? 4000 : 1000;
    for (const std::uint32_t s : {1u, 2u, 4u, 8u, 16u, 32u}) {
      prof.add_sample(task, s, misses, misses * 10, 1000);
      misses *= 0.4;
    }
  }
  // The frame buffer improves sharply at 64 sets.
  for (const std::uint32_t s : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    prof.add_sample("frame", s, s >= 64 ? 100.0 : 3000.0, 0, 0);
  }
  return prof;
}

TEST(SetsForBytes, RoundsUpToPow2Sets) {
  const auto l2 = l2_256sets();
  EXPECT_EQ(sets_for_bytes(1, l2), 1u);
  EXPECT_EQ(sets_for_bytes(64 * 4, l2), 1u);       // 4 lines = 1 set
  EXPECT_EQ(sets_for_bytes(64 * 5, l2), 2u);       // 5 lines -> 2 sets
  EXPECT_EQ(sets_for_bytes(64 * 4 * 5, l2), 8u);   // 20 lines -> 5 -> pow2 8
  EXPECT_EQ(sets_for_bytes(64 * 4 * 5, l2, false), 5u);
}

TEST(Planner, ProducesDisjointFullCoveragePlan) {
  const auto plan = plan_partitions(sample_profile(), {{0, "t0"}, {1, "t1"}},
                                    sample_buffers(), l2_256sets(), {});
  ASSERT_TRUE(plan.feasible);
  EXPECT_LE(plan.used_sets, plan.total_sets);
  // Every client present.
  for (const char* name : {"t0", "t1", "fifoA", "frame", "seg"})
    EXPECT_NE(plan.find(name), nullptr) << name;
  // Disjoint contiguous layout.
  for (std::size_t i = 1; i < plan.entries.size(); ++i)
    EXPECT_EQ(plan.entries[i].partition.base_set,
              plan.entries[i - 1].partition.base_set +
                  plan.entries[i - 1].partition.num_sets);
}

TEST(Planner, FifoGetsFootprintSizedPartition) {
  const auto plan = plan_partitions(sample_profile(), {{0, "t0"}, {1, "t1"}},
                                    sample_buffers(), l2_256sets(), {});
  const PlanEntry* fifo = plan.find("fifoA");
  ASSERT_NE(fifo, nullptr);
  // 17 lines / 4 ways -> 5 -> pow2 8 sets.
  EXPECT_EQ(fifo->sets, 8u);
}

TEST(Planner, FrameBufferSizedFromMeasuredCurve) {
  const auto plan = plan_partitions(sample_profile(), {{0, "t0"}, {1, "t1"}},
                                    sample_buffers(), l2_256sets(), {});
  const PlanEntry* frame = plan.find("frame");
  ASSERT_NE(frame, nullptr);
  EXPECT_EQ(frame->sets, 64u);  // the curve's knee
}

TEST(Planner, SegmentGetsFixedSets) {
  PlannerConfig cfg;
  cfg.segment_sets = 4;
  const auto plan = plan_partitions(sample_profile(), {{0, "t0"}, {1, "t1"}},
                                    sample_buffers(), l2_256sets(), cfg);
  EXPECT_EQ(plan.find("seg")->sets, 4u);
}

TEST(Planner, TasksGetMoreCacheWhenItPays) {
  const auto plan = plan_partitions(sample_profile(), {{0, "t0"}, {1, "t1"}},
                                    sample_buffers(), l2_256sets(), {});
  // Plenty of capacity: both tasks should reach the largest measured size.
  EXPECT_EQ(plan.find("t0")->sets, 32u);
  EXPECT_EQ(plan.find("t1")->sets, 32u);
}

TEST(Planner, InfeasibleWhenBuffersExceedCache) {
  // Even with graceful degradation (FIFO cap and segment sets reduced to
  // 1), two fixed buffers cannot fit a 2-set cache.
  mem::CacheConfig tiny;
  tiny.size_bytes = 2 * 4 * 64;  // 2 sets
  const auto plan = plan_partitions(sample_profile(), {{0, "t0"}},
                                    sample_buffers(), tiny, {});
  EXPECT_FALSE(plan.feasible);
}

TEST(Planner, DegradesFifoAllocationsInSmallCaches) {
  // At 16 sets the all-hit FIFO policy (8 sets) would eat half the cache;
  // the planner halves the cap until tasks fit.
  mem::CacheConfig small;
  small.size_bytes = 16 * 4 * 64;
  const auto plan = plan_partitions(sample_profile(), {{0, "t0"}, {1, "t1"}},
                                    sample_buffers(), small, {});
  ASSERT_TRUE(plan.feasible);
  EXPECT_LT(plan.find("fifoA")->sets, 8u);
  EXPECT_LE(plan.used_sets, plan.total_sets);
}

TEST(Planner, ApplyInstallsPartitionsAndEnables) {
  const auto plan = plan_partitions(sample_profile(), {{0, "t0"}, {1, "t1"}},
                                    sample_buffers(), l2_256sets(), {});
  mem::PartitionedCache cache(l2_256sets());
  plan.apply(cache);
  EXPECT_TRUE(cache.partitioning_enabled());
  EXPECT_TRUE(cache.partition_table().disjoint());
  EXPECT_EQ(cache.partition_table().size(), plan.entries.size());
}

TEST(Planner, ConsumesDenseGridsAndPruningIsExact) {
  // A 64-point profile per client, shaped like a replay sweep: long flat
  // stretches with a knee. The planner must consume it directly, and
  // dominance pruning must not change the MCKP optimum.
  MissProfile prof;
  for (const std::string task : {"t0", "t1"}) {
    const std::uint32_t knee = task == "t0" ? 24 : 40;
    for (std::uint32_t s = 1; s <= 64; ++s) {
      const double misses = (task == "t0" ? 4000.0 : 2500.0) /
                            (s >= knee ? 10.0 : 1.0);
      prof.add_sample(task, s, misses, misses * 10, 1000);
    }
  }
  PlannerConfig pruned_cfg;
  ASSERT_TRUE(pruned_cfg.prune_dominated);
  PlannerConfig unpruned_cfg;
  unpruned_cfg.prune_dominated = false;

  const auto tasks =
      std::vector<std::pair<TaskId, std::string>>{{0, "t0"}, {1, "t1"}};
  const auto pruned =
      plan_partitions(prof, tasks, sample_buffers(), l2_256sets(), pruned_cfg);
  const auto unpruned = plan_partitions(prof, tasks, sample_buffers(),
                                        l2_256sets(), unpruned_cfg);
  ASSERT_TRUE(pruned.feasible);
  ASSERT_TRUE(unpruned.feasible);
  EXPECT_DOUBLE_EQ(pruned.expected_task_misses, unpruned.expected_task_misses);
  // Both knees are worth taking within 256 sets (24 + 40 + buffers fit).
  EXPECT_EQ(pruned.find("t0")->sets, 24u);
  EXPECT_EQ(pruned.find("t1")->sets, 40u);
}

TEST(Planner, UniformPlanGivesEveryTaskSameSets) {
  const auto plan =
      uniform_plan(16, {{0, "t0"}, {1, "t1"}}, sample_buffers(), l2_256sets(), {});
  EXPECT_TRUE(plan.feasible);
  EXPECT_EQ(plan.find("t0")->sets, 16u);
  EXPECT_EQ(plan.find("t1")->sets, 16u);
  EXPECT_EQ(plan.find("frame")->sets, 16u);  // frames sweep too
  EXPECT_EQ(plan.find("fifoA")->sets, 8u);   // fifos keep policy
  EXPECT_EQ(plan.used_sets, plan.total_sets);
}

TEST(Profile, AveragesAcrossSamples) {
  MissProfile prof;
  prof.add_sample("t", 4, 100, 1000, 10);
  prof.add_sample("t", 4, 200, 2000, 10);
  EXPECT_DOUBLE_EQ(prof.misses("t", 4), 150.0);
  EXPECT_DOUBLE_EQ(prof.active_cycles("t", 4), 1500.0);
  EXPECT_EQ(prof.curve("t").at(4).misses.count(), 2u);
}

TEST(Profile, SizesSortedAndNamesListed) {
  MissProfile prof;
  prof.add_sample("b", 8, 1, 0, 0);
  prof.add_sample("a", 2, 1, 0, 0);
  prof.add_sample("a", 1, 1, 0, 0);
  const auto names = prof.task_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");
  const auto sizes = prof.sizes("a");
  ASSERT_EQ(sizes.size(), 2u);
  EXPECT_LT(sizes[0], sizes[1]);
  EXPECT_EQ(prof.misses("missing", 1), 0.0);
}

TEST(Power, EnergyAccounting) {
  sim::SimResults res;
  res.traffic.l1_accesses = 1000000;
  res.traffic.l2_accesses = 100000;
  res.traffic.dram_accesses = 10000;
  res.makespan = 300000000;  // 1 second at 300 MHz
  PowerConfig cfg;
  const PowerReport rep = estimate_power(res, cfg);
  EXPECT_NEAR(rep.seconds, 1.0, 1e-9);
  EXPECT_NEAR(rep.static_mj, cfg.static_mw, 1e-9);
  EXPECT_NEAR(rep.l1_mj, 1000000 * cfg.l1_access_nj * 1e-6, 1e-12);
  EXPECT_GT(rep.total_mj, rep.static_mj);
  EXPECT_NEAR(rep.avg_watts, rep.total_mj * 1e-3, 1e-9);
}

TEST(Power, FewerMissesMeansLessEnergy) {
  sim::SimResults good, bad;
  good.traffic = {1000000, 50000, 1000, 64000};
  bad.traffic = {1000000, 50000, 50000, 3200000};
  good.makespan = bad.makespan = 1000000;
  EXPECT_LT(estimate_power(good).total_mj, estimate_power(bad).total_mj);
}

TEST(Compositionality, ReportMath) {
  MissProfile prof;
  prof.add_sample("a", 4, 100, 0, 0);
  prof.add_sample("b", 8, 50, 0, 0);

  PartitionPlan plan;
  PlanEntry ea;
  ea.name = "a";
  ea.is_task = true;
  ea.sets = 4;
  PlanEntry eb;
  eb.name = "b";
  eb.is_task = true;
  eb.sets = 8;
  plan.entries = {ea, eb};

  sim::SimResults run;
  sim::TaskRunStats ta;
  ta.name = "a";
  ta.l2.misses = 110;
  sim::TaskRunStats tb;
  tb.name = "b";
  tb.l2.misses = 50;
  run.tasks = {ta, tb};

  const auto rep = compare_expected_vs_simulated(prof, plan, run);
  ASSERT_EQ(rep.rows.size(), 2u);
  EXPECT_DOUBLE_EQ(rep.total_simulated, 160.0);
  EXPECT_DOUBLE_EQ(rep.rows[0].abs_diff, 10.0);
  EXPECT_NEAR(rep.max_rel_to_total, 10.0 / 160.0, 1e-12);
  EXPECT_TRUE(rep.within(0.10));
  EXPECT_FALSE(rep.within(0.01));
}

// ---- Curvature-eps auto-tune (PlannerConfig::kAutoCurvatureEps) ----

TEST(AutoCurvatureEps, ZeroWithoutRepeatedMeasurements) {
  // Single-sample points carry no spread information: auto-tune must stay
  // lossless (eps 0) rather than guess a tolerance.
  EXPECT_EQ(auto_curvature_eps(sample_profile()), 0.0);
  EXPECT_EQ(auto_curvature_eps(MissProfile{}), 0.0);
}

TEST(AutoCurvatureEps, TracksRelativeJitterSpreadAndClamps) {
  MissProfile prof;
  for (const double m : {100.0, 100.0}) prof.add_sample("t", 1, m, 0, 0);
  for (const double m : {58.0, 62.0}) prof.add_sample("t", 2, m, 0, 0);
  for (const double m : {30.0, 30.0}) prof.add_sample("t", 3, m, 0, 0);
  for (const double m : {10.0, 10.0}) prof.add_sample("t", 4, m, 0, 0);
  // Range 90, noisiest point stddev sqrt(8) (Welford, n-1 denominator).
  EXPECT_DOUBLE_EQ(auto_curvature_eps(prof), std::sqrt(8.0) / 90.0);

  // A pathologically noisy point is clamped: thinning tolerance never
  // exceeds 5% of the cost range.
  for (const double m : {0.0, 90.0}) prof.add_sample("t", 5, m, 0, 0);
  EXPECT_DOUBLE_EQ(auto_curvature_eps(prof), 0.05);
}

TEST(AutoCurvatureEps, IsTheDefaultAndLosslessOnNoiselessProfiles) {
  PlannerConfig def;
  EXPECT_EQ(def.curvature_eps, PlannerConfig::kAutoCurvatureEps);

  PlannerConfig exact = def;
  exact.curvature_eps = 0.0;
  const auto auto_plan = plan_partitions(
      sample_profile(), {{0, "t0"}, {1, "t1"}}, sample_buffers(),
      l2_256sets(), def);
  const auto exact_plan = plan_partitions(
      sample_profile(), {{0, "t0"}, {1, "t1"}}, sample_buffers(),
      l2_256sets(), exact);
  // No repeated measurements -> auto eps 0 -> bit-identical plans.
  EXPECT_TRUE(auto_plan.identical(exact_plan));
}

TEST(AutoCurvatureEps, KneesSurviveAcrossBuiltInScenarios) {
  // Profile every (tiny-content) built-in with repeated jitter runs, then
  // plan with auto-tuned thinning vs. lossless pruning: the auto plan's
  // expected misses stay within the thinning error bound — eps x cost
  // range per MCKP group — so no statistically significant knee was
  // dropped. (The production-content scenarios share this exact code
  // path; their content only scales the curves.)
  for (const std::string name :
       {"jpeg-canny-tiny", "mpeg2-tiny", "mpeg2-tiny-rand",
        "jpeg-canny-dense"}) {
    const core::ScenarioSpec spec = core::scenarios().get(name);
    core::ExperimentConfig cfg = spec.experiment;
    cfg.profile_runs = 2;  // jitter spread needs repeated measurements
    cfg.profiler = core::ProfilerMode::kTraceReplay;
    const core::Experiment exp(spec.factory, cfg);
    const MissProfile prof = exp.profile();

    const double eps = auto_curvature_eps(prof);
    EXPECT_GE(eps, 0.0) << name;
    EXPECT_LE(eps, 0.05) << name;

    PlannerConfig auto_cfg = cfg.planner;
    auto_cfg.curvature_eps = PlannerConfig::kAutoCurvatureEps;
    PlannerConfig exact_cfg = cfg.planner;
    exact_cfg.curvature_eps = 0.0;
    const auto tasks = exp.tasks();
    const auto buffers = exp.buffers();
    const mem::CacheConfig& l2 = cfg.platform.hier.l2;
    const auto auto_plan =
        plan_partitions(prof, tasks, buffers, l2, auto_cfg);
    const auto exact_plan =
        plan_partitions(prof, tasks, buffers, l2, exact_cfg);
    ASSERT_TRUE(auto_plan.feasible) << name;
    ASSERT_TRUE(exact_plan.feasible) << name;

    // Thinning error bound: eps x (cost range) per profiled group.
    double bound = 1e-6;
    for (const std::string& task : prof.task_names()) {
      double lo = 0.0, hi = 0.0;
      bool first = true;
      for (const std::uint32_t s : prof.sizes(task)) {
        const double m = prof.misses(task, s);
        lo = first ? m : std::min(lo, m);
        hi = first ? m : std::max(hi, m);
        first = false;
      }
      bound += eps * (hi - lo);
    }
    EXPECT_LE(std::abs(auto_plan.expected_task_misses -
                       exact_plan.expected_task_misses),
              bound)
        << name << " (auto eps " << eps << ")";
  }
}

}  // namespace
}  // namespace cms::opt
