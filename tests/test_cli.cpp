// Tests for the shared CLI helpers: accepted/rejected --jobs forms (the
// validation must be stricter than strtoul), the --profiler flag, the
// tiered-store flags (--store-l2 / --store-l2-dir share a prefix and
// must never be confused for one another), the socket-server flags
// (--port presence semantics, worker/queue bounds, the coalesce-window
// float validation) and the --service-clients thread-count sanity bound.
#include <gtest/gtest.h>

#include <vector>

#include "core/cli.hpp"

namespace cms::core {
namespace {

unsigned jobs_of(std::vector<const char*> args, unsigned def = 1) {
  args.insert(args.begin(), "prog");
  return parse_jobs(static_cast<int>(args.size()),
                    const_cast<char**>(args.data()), def);
}

ProfilerMode profiler_of(std::vector<const char*> args,
                         ProfilerMode def = ProfilerMode::kFullSim) {
  args.insert(args.begin(), "prog");
  return parse_profiler(static_cast<int>(args.size()),
                        const_cast<char**>(args.data()), def);
}

TEST(ParseJobs, AcceptsPlainDecimal) {
  EXPECT_EQ(jobs_of({"--jobs", "4"}), 4u);
  EXPECT_EQ(jobs_of({"--jobs=8"}), 8u);
  EXPECT_EQ(jobs_of({"--jobs", "0"}), 0u);  // 0 = hardware concurrency
  EXPECT_EQ(jobs_of({"--jobs=1024"}), 1024u);
}

TEST(ParseJobs, AbsentFlagKeepsDefault) {
  EXPECT_EQ(jobs_of({}), 1u);
  EXPECT_EQ(jobs_of({"--quick"}, 7), 7u);
}

TEST(ParseJobs, RejectsStrtoulQuirks) {
  // strtoul accepts all of these; the flag validation must not.
  EXPECT_EQ(jobs_of({"--jobs=+5"}), 1u);
  EXPECT_EQ(jobs_of({"--jobs", "+5"}), 1u);
  EXPECT_EQ(jobs_of({"--jobs", " 5"}), 1u);
  EXPECT_EQ(jobs_of({"--jobs=\t5"}), 1u);
  EXPECT_EQ(jobs_of({"--jobs", "-1"}), 1u);
  EXPECT_EQ(jobs_of({"--jobs=0x10"}), 1u);
}

TEST(ParseJobs, RejectsMalformedAndOutOfRange) {
  EXPECT_EQ(jobs_of({"--jobs"}), 1u);              // missing value
  EXPECT_EQ(jobs_of({"--jobs", "--quick"}), 1u);   // typo'd value
  EXPECT_EQ(jobs_of({"--jobs="}), 1u);             // empty value
  EXPECT_EQ(jobs_of({"--jobs", "4x"}), 1u);        // trailing junk
  EXPECT_EQ(jobs_of({"--jobs=1025"}), 1u);         // above kMaxJobs
  EXPECT_EQ(jobs_of({"--jobs=99999999999999999999"}), 1u);  // overflow
}

TEST(ParseProfiler, AcceptsBothModes) {
  EXPECT_EQ(profiler_of({"--profiler", "fullsim"}), ProfilerMode::kFullSim);
  EXPECT_EQ(profiler_of({"--profiler=replay"}), ProfilerMode::kTraceReplay);
  EXPECT_EQ(profiler_of({"--profiler", "replay"}), ProfilerMode::kTraceReplay);
}

TEST(ParseProfiler, DefaultAndBadValues) {
  EXPECT_EQ(profiler_of({}), ProfilerMode::kFullSim);
  EXPECT_EQ(profiler_of({}, ProfilerMode::kTraceReplay),
            ProfilerMode::kTraceReplay);
  EXPECT_EQ(profiler_of({"--profiler=warp"}), ProfilerMode::kFullSim);
  EXPECT_EQ(profiler_of({"--profiler"}), ProfilerMode::kFullSim);
  EXPECT_EQ(profiler_of({"--profiler=REPLAY"}, ProfilerMode::kFullSim),
            ProfilerMode::kFullSim);
}

TEST(HasFlag, ExactMatchOnly) {
  std::vector<const char*> present{"p", "--quick"};
  EXPECT_TRUE(has_flag(2, const_cast<char**>(present.data()), "--quick"));
  std::vector<const char*> prefix{"p", "--quicker"};
  EXPECT_FALSE(has_flag(2, const_cast<char**>(prefix.data()), "--quick"));
}

opt::ReplayKernel kernel_of(std::vector<const char*> args,
                            opt::ReplayKernel def = opt::ReplayKernel::kAuto) {
  args.insert(args.begin(), "prog");
  return parse_replay_kernel(static_cast<int>(args.size()),
                             const_cast<char**>(args.data()), def);
}

TEST(ParseReplayKernel, AcceptsAllEngines) {
  EXPECT_EQ(kernel_of({"--replay-kernel", "auto"}), opt::ReplayKernel::kAuto);
  EXPECT_EQ(kernel_of({"--replay-kernel=scalar"}),
            opt::ReplayKernel::kScalar);
  EXPECT_EQ(kernel_of({"--replay-kernel", "sse4"}), opt::ReplayKernel::kSse4);
  EXPECT_EQ(kernel_of({"--replay-kernel=avx2"}), opt::ReplayKernel::kAvx2);
  EXPECT_EQ(kernel_of({"--replay-kernel", "persize"}),
            opt::ReplayKernel::kPerSize);
}

TEST(ParseReplayKernel, DefaultAndBadValues) {
  EXPECT_EQ(kernel_of({}), opt::ReplayKernel::kAuto);
  EXPECT_EQ(kernel_of({}, opt::ReplayKernel::kScalar),
            opt::ReplayKernel::kScalar);
  EXPECT_EQ(kernel_of({"--replay-kernel=avx512"}), opt::ReplayKernel::kAuto);
  EXPECT_EQ(kernel_of({"--replay-kernel"}), opt::ReplayKernel::kAuto);
  EXPECT_EQ(kernel_of({"--replay-kernel=AVX2"}), opt::ReplayKernel::kAuto);
}

PlanCacheMode plan_cache_of(std::vector<const char*> args,
                            PlanCacheMode def = PlanCacheMode::kDisk) {
  args.insert(args.begin(), "prog");
  return parse_plan_cache(static_cast<int>(args.size()),
                          const_cast<char**>(args.data()), def);
}

TEST(ParsePlanCache, AcceptsAllModes) {
  EXPECT_EQ(plan_cache_of({"--plan-cache", "off"}), PlanCacheMode::kOff);
  EXPECT_EQ(plan_cache_of({"--plan-cache=mem"}), PlanCacheMode::kMemory);
  EXPECT_EQ(plan_cache_of({"--plan-cache", "disk"}, PlanCacheMode::kOff),
            PlanCacheMode::kDisk);
}

TEST(ParsePlanCache, DefaultAndBadValues) {
  EXPECT_EQ(plan_cache_of({}), PlanCacheMode::kDisk);
  EXPECT_EQ(plan_cache_of({}, PlanCacheMode::kOff), PlanCacheMode::kOff);
  EXPECT_EQ(plan_cache_of({"--plan-cache=ram"}), PlanCacheMode::kDisk);
  EXPECT_EQ(plan_cache_of({"--plan-cache"}), PlanCacheMode::kDisk);
  // The budget flags share the prefix; they must not be mistaken for the
  // mode flag itself.
  EXPECT_EQ(plan_cache_of({"--plan-cache-budget-bytes", "5"}),
            PlanCacheMode::kDisk);
}

TEST(ParsePlanCacheBudgets, ParseAsPlainDecimalU64) {
  std::vector<const char*> args{"p", "--plan-cache-budget-bytes=4096",
                                "--plan-cache-budget-entries", "8"};
  char** argv = const_cast<char**>(args.data());
  EXPECT_EQ(parse_plan_cache_budget_bytes(4, argv), 4096u);
  EXPECT_EQ(parse_plan_cache_budget_entries(4, argv), 8u);
  std::vector<const char*> bad{"p", "--plan-cache-budget-bytes=64k"};
  EXPECT_EQ(parse_plan_cache_budget_bytes(
                2, const_cast<char**>(bad.data()), 7),
            7u);
}

StoreL2Mode l2_of(std::vector<const char*> args,
                  StoreL2Mode def = StoreL2Mode::kReadWrite) {
  args.insert(args.begin(), "prog");
  return parse_store_l2(static_cast<int>(args.size()),
                        const_cast<char**>(args.data()), def);
}

std::string l2_dir_of(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return parse_store_l2_dir(static_cast<int>(args.size()),
                            const_cast<char**>(args.data()));
}

TEST(ParseStoreL2, AcceptsAllModes) {
  EXPECT_EQ(l2_of({"--store-l2", "off"}), StoreL2Mode::kOff);
  EXPECT_EQ(l2_of({"--store-l2=ro"}), StoreL2Mode::kReadOnly);
  EXPECT_EQ(l2_of({"--store-l2", "rw"}, StoreL2Mode::kOff),
            StoreL2Mode::kReadWrite);
}

TEST(ParseStoreL2, DefaultAndBadValues) {
  EXPECT_EQ(l2_of({}), StoreL2Mode::kReadWrite);
  EXPECT_EQ(l2_of({}, StoreL2Mode::kOff), StoreL2Mode::kOff);
  EXPECT_EQ(l2_of({"--store-l2=readonly"}), StoreL2Mode::kReadWrite);
  EXPECT_EQ(l2_of({"--store-l2"}), StoreL2Mode::kReadWrite);
  EXPECT_EQ(l2_of({"--store-l2=RO"}), StoreL2Mode::kReadWrite);
  // The dir flag shares the prefix; it must not be mistaken for the mode
  // flag (nor its directory swallowed as a mode value).
  EXPECT_EQ(l2_of({"--store-l2-dir", "far"}), StoreL2Mode::kReadWrite);
  EXPECT_EQ(l2_of({"--store-l2-dir=far", "--store-l2=ro"}),
            StoreL2Mode::kReadOnly);
}

TEST(ParseStoreL2Dir, BothFormsAndDefault) {
  EXPECT_EQ(l2_dir_of({"--store-l2-dir", "far"}), "far");
  EXPECT_EQ(l2_dir_of({"--store-l2-dir=/tmp/far"}), "/tmp/far");
  EXPECT_EQ(l2_dir_of({}), "");
  EXPECT_EQ(l2_dir_of({"--store-l2-dir"}), "");  // missing value
  // The mode flag must not leak its value into the directory.
  EXPECT_EQ(l2_dir_of({"--store-l2", "rw"}), "");
}

TEST(ParseStoreL2, TcpEndpointImpliesReadWrite) {
  // `--store-l2 tcp://host:port` is the networked far tier in one flag:
  // the value doubles as the target, and the mode is rw.
  EXPECT_EQ(l2_of({"--store-l2", "tcp://10.0.0.1:9000"}, StoreL2Mode::kOff),
            StoreL2Mode::kReadWrite);
  EXPECT_EQ(l2_of({"--store-l2=tcp://h:1"}, StoreL2Mode::kOff),
            StoreL2Mode::kReadWrite);
}

std::string l2_target_of(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return parse_store_l2_target(static_cast<int>(args.size()),
                               const_cast<char**>(args.data()));
}

TEST(ParseStoreL2Target, DirWinsThenTcpModeValue) {
  // The explicit dir flag (which itself may carry a tcp:// url) always
  // wins; otherwise a tcp:// mode value is the target; otherwise none.
  EXPECT_EQ(l2_target_of({"--store-l2-dir", "far"}), "far");
  EXPECT_EQ(l2_target_of({"--store-l2-dir=tcp://h:1"}), "tcp://h:1");
  EXPECT_EQ(l2_target_of({"--store-l2", "tcp://h:2"}), "tcp://h:2");
  EXPECT_EQ(l2_target_of({"--store-l2-dir", "far", "--store-l2=tcp://h:3"}),
            "far");
  EXPECT_EQ(l2_target_of({"--store-l2", "rw"}), "");  // a mode, not a target
  EXPECT_EQ(l2_target_of({}), "");
}

unsigned clients_of(std::vector<const char*> args, unsigned def = 4) {
  args.insert(args.begin(), "prog");
  return parse_service_clients(static_cast<int>(args.size()),
                               const_cast<char**>(args.data()), def);
}

TEST(ParseServiceClients, AcceptsSaneCounts) {
  EXPECT_EQ(clients_of({"--service-clients", "8"}), 8u);
  EXPECT_EQ(clients_of({"--service-clients=1"}), 1u);
  EXPECT_EQ(clients_of({"--service-clients=1024"}), 1024u);
  EXPECT_EQ(clients_of({}), 4u);
  EXPECT_EQ(clients_of({}, 16), 16u);
}

TEST(ParseServiceClients, UpperBoundSanity) {
  // Every thread is a real client connection in the benches: a mistyped
  // count must fall back to the default, not build a 99999-thread army.
  EXPECT_EQ(clients_of({"--service-clients=0"}), 4u);
  EXPECT_EQ(clients_of({"--service-clients", "1025"}), 4u);  // > kMaxJobs
  EXPECT_EQ(clients_of({"--service-clients=99999"}, 2), 2u);
  EXPECT_EQ(clients_of({"--service-clients=8x"}), 4u);
}

TEST(HasValueFlag, AllThreeForms) {
  std::vector<const char*> bare{"p", "--port"};
  EXPECT_TRUE(has_value_flag(2, const_cast<char**>(bare.data()), "--port"));
  std::vector<const char*> pair{"p", "--port", "0"};
  EXPECT_TRUE(has_value_flag(3, const_cast<char**>(pair.data()), "--port"));
  std::vector<const char*> eq{"p", "--port=8080"};
  EXPECT_TRUE(has_value_flag(2, const_cast<char**>(eq.data()), "--port"));
  // A shared prefix is NOT the flag (--port-file vs --port).
  std::vector<const char*> prefix{"p", "--port-file", "x"};
  EXPECT_FALSE(has_value_flag(3, const_cast<char**>(prefix.data()),
                              "--port"));
}

TEST(ParsePort, RangeAndDefault) {
  std::vector<const char*> ok{"p", "--port=8080"};
  EXPECT_EQ(parse_port(2, const_cast<char**>(ok.data())), 8080);
  std::vector<const char*> zero{"p", "--port", "0"};
  EXPECT_EQ(parse_port(3, const_cast<char**>(zero.data())), 0);
  std::vector<const char*> big{"p", "--port=65536"};
  EXPECT_EQ(parse_port(2, const_cast<char**>(big.data())), 0);
  std::vector<const char*> absent{"p"};
  EXPECT_EQ(parse_port(1, const_cast<char**>(absent.data()), 9), 9);
}

TEST(ParseNetWorkers, BoundsLikeJobs) {
  std::vector<const char*> ok{"p", "--net-workers=32"};
  EXPECT_EQ(parse_net_workers(2, const_cast<char**>(ok.data())), 32u);
  std::vector<const char*> zero{"p", "--net-workers=0"};
  EXPECT_EQ(parse_net_workers(2, const_cast<char**>(zero.data())), 8u);
  std::vector<const char*> big{"p", "--net-workers=1025"};
  EXPECT_EQ(parse_net_workers(2, const_cast<char**>(big.data()), 6), 6u);
}

TEST(ParseMaxPending, RejectsZero) {
  std::vector<const char*> ok{"p", "--max-pending=2"};
  EXPECT_EQ(parse_max_pending(2, const_cast<char**>(ok.data())), 2u);
  std::vector<const char*> zero{"p", "--max-pending=0"};
  EXPECT_EQ(parse_max_pending(2, const_cast<char**>(zero.data())), 256u);
}

double window_of(std::vector<const char*> args, double def = 0.0) {
  args.insert(args.begin(), "prog");
  return parse_coalesce_window_ms(static_cast<int>(args.size()),
                                  const_cast<char**>(args.data()), def);
}

TEST(ParseCoalesceWindow, AcceptsFiniteMilliseconds) {
  EXPECT_DOUBLE_EQ(window_of({"--coalesce-window-ms", "150"}), 150.0);
  EXPECT_DOUBLE_EQ(window_of({"--coalesce-window-ms=2.5"}), 2.5);
  EXPECT_DOUBLE_EQ(window_of({"--coalesce-window-ms=0"}), 0.0);
  EXPECT_DOUBLE_EQ(window_of({}), 0.0);
  EXPECT_DOUBLE_EQ(window_of({}, 250.0), 250.0);
}

TEST(ParseCoalesceWindow, RejectsNonFiniteAndAbsurd) {
  EXPECT_DOUBLE_EQ(window_of({"--coalesce-window-ms=-1"}, 5.0), 5.0);
  EXPECT_DOUBLE_EQ(window_of({"--coalesce-window-ms=nan"}, 5.0), 5.0);
  EXPECT_DOUBLE_EQ(window_of({"--coalesce-window-ms=inf"}, 5.0), 5.0);
  EXPECT_DOUBLE_EQ(window_of({"--coalesce-window-ms=60001"}, 5.0), 5.0);
  EXPECT_DOUBLE_EQ(window_of({"--coalesce-window-ms=5ms"}, 5.0), 5.0);
  EXPECT_DOUBLE_EQ(window_of({"--coalesce-window-ms="}, 5.0), 5.0);
}

}  // namespace
}  // namespace cms::core
