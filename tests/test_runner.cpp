// Campaign runner tests: submission-order results, determinism of the
// parallel profiling sweep against the serial one (thread counts 1/2/8),
// fragment folding, and error propagation.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "core/experiment.hpp"
#include "core/runner.hpp"

namespace cms::core {
namespace {

ExperimentConfig tiny_experiment(unsigned jobs) {
  ExperimentConfig cfg;
  cfg.platform.hier.l2.size_bytes = 32 * 1024;
  cfg.profile_grid = {1, 2, 4, 8};
  cfg.profile_runs = 2;  // >1 so per-point stats see several samples
  cfg.jobs = jobs;
  return cfg;
}

AppFactory tiny_m2v() {
  return [] { return apps::make_m2v_app(apps::AppConfig::tiny(7)); };
}

TEST(Campaign, ResolvesWorkerCount) {
  EXPECT_EQ(Campaign::resolve_jobs(3), 3u);
  EXPECT_GE(Campaign::resolve_jobs(0), 1u);  // hardware concurrency
}

TEST(Campaign, ResultsInSubmissionOrder) {
  Experiment exp(tiny_m2v(), tiny_experiment(1));
  Campaign camp(4);
  // Heavier job first, lighter second: completion order likely inverts
  // submission order, results must not.
  SimJob heavy = exp.shared_job(0);
  heavy.label = "heavy";
  SimJob light = exp.shared_job(1);
  light.label = "light";
  EXPECT_EQ(camp.add(heavy), 0u);
  EXPECT_EQ(camp.add(light), 1u);
  EXPECT_EQ(camp.size(), 2u);

  const auto results = camp.run_all();
  EXPECT_EQ(camp.size(), 0u);  // queue drained
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].index, 0u);
  EXPECT_EQ(results[0].label, "heavy");
  EXPECT_EQ(results[1].index, 1u);
  EXPECT_EQ(results[1].label, "light");
  EXPECT_GE(results[0].wall_ms, 0.0);
  EXPECT_GT(results[0].output.results.l2_accesses, 0u);
}

TEST(Campaign, ExecuteJobMatchesExperimentRun) {
  Experiment exp(tiny_m2v(), tiny_experiment(1));
  const RunOutput direct = exp.run_shared();
  const RunOutput via_job = execute_job(exp.shared_job(0));
  EXPECT_EQ(direct.results.l2_misses, via_job.results.l2_misses);
  EXPECT_EQ(direct.results.makespan, via_job.results.makespan);
  EXPECT_EQ(direct.verified, via_job.verified);
}

TEST(Campaign, ParallelProfileBitIdenticalToSerial) {
  const opt::MissProfile serial =
      Experiment(tiny_m2v(), tiny_experiment(1)).profile();
  ASSERT_FALSE(serial.task_names().empty());
  for (const unsigned jobs : {2u, 8u}) {
    const opt::MissProfile parallel =
        Experiment(tiny_m2v(), tiny_experiment(jobs)).profile();
    EXPECT_TRUE(parallel.identical(serial)) << jobs << " workers";
  }
}

TEST(Campaign, HardwareConcurrencyProfileBitIdentical) {
  const opt::MissProfile serial =
      Experiment(tiny_m2v(), tiny_experiment(1)).profile();
  const opt::MissProfile parallel =
      Experiment(tiny_m2v(), tiny_experiment(0)).profile();
  EXPECT_TRUE(parallel.identical(serial));
}

TEST(Campaign, WorkerExceptionsPropagate) {
  Campaign camp(2);
  Experiment exp(tiny_m2v(), tiny_experiment(1));
  camp.add(exp.shared_job(0));
  SimJob bad = exp.shared_job(0);
  bad.factory = []() -> apps::Application {
    throw std::runtime_error("factory failed");
  };
  camp.add(bad);
  EXPECT_THROW(camp.run_all(), std::runtime_error);
}

TEST(ProfileFragments, FoldIsCompletionOrderIndependent) {
  // Three fragments with distinct per-order samples, folded in two
  // different arrival orders, must produce bitwise-equal profiles.
  std::vector<opt::ProfileFragment> a(3), b(3);
  for (std::uint64_t i = 0; i < 3; ++i) {
    opt::ProfileFragment frag;
    frag.order = i;
    frag.add("t", 4, 100.0 + static_cast<double>(i) * 3.3, 10.0, 5.0);
    a[i] = frag;
    b[2 - i] = frag;  // reversed arrival
  }
  const opt::MissProfile pa = opt::fold_fragments(a);
  const opt::MissProfile pb = opt::fold_fragments(b);
  EXPECT_TRUE(pa.identical(pb));
  EXPECT_EQ(pa.curve("t").at(4).misses.count(), 3u);
}

TEST(ProfileFragments, MergePoolsSamples) {
  opt::MissProfile a, b;
  a.add_sample("t", 4, 10.0, 1.0, 1.0);
  b.add_sample("t", 4, 20.0, 3.0, 1.0);
  b.add_sample("u", 8, 5.0, 1.0, 1.0);
  a.merge(b);
  EXPECT_EQ(a.curve("t").at(4).misses.count(), 2u);
  EXPECT_DOUBLE_EQ(a.misses("t", 4), 15.0);
  EXPECT_DOUBLE_EQ(a.misses("u", 8), 5.0);
}

TEST(Experiment, ProfileJobsDescribeCanonicalSweep) {
  const ExperimentConfig cfg = tiny_experiment(1);
  Experiment exp(tiny_m2v(), cfg);
  const auto sweep = exp.profile_jobs();
  ASSERT_EQ(sweep.size(), cfg.profile_grid.size() * cfg.profile_runs);
  std::size_t i = 0;
  for (const std::uint32_t sets : cfg.profile_grid)
    for (std::uint32_t r = 0; r < cfg.profile_runs; ++r, ++i) {
      EXPECT_EQ(sweep[i].sets, sets);
      EXPECT_EQ(sweep[i].run, r);
      EXPECT_EQ(sweep[i].job.jitter, r);
      ASSERT_NE(sweep[i].job.plan, nullptr);
    }
}

}  // namespace
}  // namespace cms::core
