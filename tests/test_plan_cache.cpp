// Tests for the memoized plan cache (opt/plan_cache.hpp): PlanKey
// canonicalization and sensitivity, bit-exact entry round trips through
// the .cmsplan format, every corruption path throwing, the two cache
// tiers (LRU budgets, pin-during-read, cross-instance disk warm hits,
// vanished-file-means-miss), coexistence with a TraceStore over one
// directory, and a multi-threaded stress mirroring TraceStoreStress.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "opt/plan_cache.hpp"
#include "opt/trace_store.hpp"

namespace cms::opt {
namespace {

namespace fs = std::filesystem;

/// Fresh directory under the system temp dir, removed on destruction.
struct TempDir {
  fs::path path;
  TempDir() {
    static int counter = 0;
    path = fs::temp_directory_path() /
           ("cms-plan-cache-test-" + std::to_string(::getpid()) + "-" +
            std::to_string(counter++));
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string file(const std::string& name) const {
    return (path / name).string();
  }
};

/// A representative entry: a folded profile with repeated measurements
/// (non-trivial Welford state), a multi-entry plan and predictions. `n`
/// makes entries distinguishable per digest.
PlanCacheEntry sample_entry(std::uint64_t n = 0) {
  PlanCacheEntry e;
  for (const std::uint32_t sets : {1u, 4u, 16u}) {
    e.profile.add_sample("vld", sets, 100.0 + static_cast<double>(sets), 5000.0, 1234.0);
    e.profile.add_sample("vld", sets, 101.5 + static_cast<double>(sets), 5100.0, 1234.0);
    e.profile.add_sample("idct", sets, 40.25, 7000.0, 4321.0);
  }
  PlanEntry t;
  t.client = mem::ClientId::task(3);
  t.name = "vld";
  t.is_task = true;
  t.sets = 16;
  t.partition = {32, 16};
  t.expected_misses = 116.75 + static_cast<double>(n);
  e.plan.entries.push_back(t);
  PlanEntry b;
  b.client = mem::ClientId::buffer(7);
  b.name = "fifo0";
  b.kind = kpn::BufferKind::kFifo;
  b.sets = 4;
  b.partition = {48, 4};
  e.plan.entries.push_back(b);
  e.plan.total_sets = 128;
  e.plan.used_sets = 52;
  e.plan.spare = {52, 76};
  e.plan.expected_task_misses = 157.0 + static_cast<double>(n);
  e.plan.feasible = true;
  e.predictions.push_back({"vld", 16, 116.75, 5050.0});
  e.predictions.push_back({"idct", 4, 40.25, 7000.0});
  e.curvature_eps = 0.015625;
  return e;
}

void expect_identical(const PlanCacheEntry& a, const PlanCacheEntry& b) {
  EXPECT_TRUE(a.profile.identical(b.profile));
  EXPECT_TRUE(a.plan.identical(b.plan));
  EXPECT_EQ(a.predictions, b.predictions);
  EXPECT_EQ(a.curvature_eps, b.curvature_eps);
}

PlanKey sample_key() {
  PlanKey k;
  k.capture_digests = {"digest-b", "digest-a"};
  k.grid = {1, 2, 4, 8};
  k.runs = 2;
  k.l2_size_bytes = 64 * 1024;
  return k;
}

// ---- PlanKey ----

TEST(PlanKey, DeterministicAndOrderCanonical) {
  const PlanKey a = sample_key();
  PlanKey b = sample_key();
  EXPECT_EQ(a.digest(), b.digest());
  // The profile folds by schedule position, not digest order: the same
  // capture SET must address the same plan.
  std::swap(b.capture_digests[0], b.capture_digests[1]);
  EXPECT_EQ(a.digest(), b.digest());
}

TEST(PlanKey, EveryKnobChangesTheDigest) {
  const std::string base = sample_key().digest();
  {
    PlanKey k = sample_key();
    k.capture_digests.push_back("digest-c");
    EXPECT_NE(k.digest(), base);
  }
  {
    PlanKey k = sample_key();
    k.grid.push_back(16);
    EXPECT_NE(k.digest(), base);
  }
  {
    PlanKey k = sample_key();
    k.runs = 3;
    EXPECT_NE(k.digest(), base);
  }
  {
    PlanKey k = sample_key();
    k.l2_size_bytes *= 2;
    EXPECT_NE(k.digest(), base);
  }
  {
    PlanKey k = sample_key();
    k.planner.frame_buffer_sets += 1;
    EXPECT_NE(k.digest(), base);
  }
  {
    PlanKey k = sample_key();
    k.planner.segment_sets += 1;
    EXPECT_NE(k.digest(), base);
  }
  {
    PlanKey k = sample_key();
    k.planner.size_grid = {1, 2};
    EXPECT_NE(k.digest(), base);
  }
  {
    PlanKey k = sample_key();
    k.planner.prune_dominated = !k.planner.prune_dominated;
    EXPECT_NE(k.digest(), base);
  }
  {
    PlanKey k = sample_key();
    k.planner.curvature_eps = 0.01;
    EXPECT_NE(k.digest(), base);
  }
  {
    PlanKey k = sample_key();
    k.planner.solver = TaskSolver::kGreedy;
    EXPECT_NE(k.digest(), base);
  }
  {
    PlanKey k = sample_key();
    k.planner.max_fifo_sets += 1;
    EXPECT_NE(k.digest(), base);
  }
}

TEST(PlanKey, AllAutoEpsSpellingsCollapseToOneKey) {
  // Any negative eps means "auto-tune"; the tuned value is a pure
  // function of the captures + grid already in the key.
  PlanKey a = sample_key();
  a.planner.curvature_eps = PlannerConfig::kAutoCurvatureEps;
  PlanKey b = sample_key();
  b.planner.curvature_eps = -2.5;
  EXPECT_EQ(a.digest(), b.digest());
  PlanKey c = sample_key();
  c.planner.curvature_eps = 0.0;
  EXPECT_NE(a.digest(), c.digest());
}

// ---- Entry format ----

TEST(PlanFormat, EncodeDecodeRoundTripsBitExactly) {
  const PlanCacheEntry original = sample_entry();
  const std::vector<std::uint8_t> bytes =
      encode_plan_entry(original, "plan-key-1");
  std::string digest;
  const PlanCacheEntry decoded =
      decode_plan_entry(bytes.data(), bytes.size(), "<memory>", &digest);
  EXPECT_EQ(digest, "plan-key-1");
  expect_identical(original, decoded);
}

TEST(PlanFormat, FileRoundTripsAndLeavesNoTempFiles) {
  TempDir tmp;
  const std::string path = tmp.file("entry.cmsplan");
  const PlanCacheEntry original = sample_entry();
  save_plan_entry(original, "k", path);
  std::string digest;
  const PlanCacheEntry loaded = load_plan_entry(path, &digest);
  EXPECT_EQ(digest, "k");
  expect_identical(original, loaded);
  std::size_t files = 0;
  for (const auto& e : fs::directory_iterator(tmp.path)) {
    (void)e;
    ++files;
  }
  EXPECT_EQ(files, 1u);
}

TEST(PlanFormatFuzz, RandomTruncationsAlwaysThrow) {
  const std::vector<std::uint8_t> bytes =
      encode_plan_entry(sample_entry(), "fuzz-key");
  Rng rng(0x9A7CACE5ull);  // deterministic: any failure reproduces
  for (int i = 0; i < 300; ++i) {
    const auto keep = static_cast<std::size_t>(rng.below(bytes.size()));
    EXPECT_THROW(decode_plan_entry(bytes.data(), keep, "<fuzz-trunc>"),
                 std::runtime_error)
        << "kept " << keep << " of " << bytes.size() << " bytes";
  }
}

TEST(PlanFormatFuzz, RandomByteMutationsAlwaysThrow) {
  const std::vector<std::uint8_t> original =
      encode_plan_entry(sample_entry(), "fuzz-key");
  Rng rng(0xBADC0DEull);
  for (int i = 0; i < 300; ++i) {
    std::vector<std::uint8_t> bytes = original;
    const int flips = 1 + static_cast<int>(rng.below(4));
    for (int f = 0; f < flips; ++f) {
      const auto pos = static_cast<std::size_t>(rng.below(bytes.size()));
      bytes[pos] ^= static_cast<std::uint8_t>(1 + rng.below(255));
    }
    if (bytes == original) continue;  // flips cancelled out: not a mutation
    EXPECT_THROW(decode_plan_entry(bytes.data(), bytes.size(), "<fuzz-mut>"),
                 std::runtime_error)
        << "mutation " << i << " decoded silently";
  }
}

TEST(PlanFormatFuzz, AppendedGarbageAndFileCorruptionAlwaysThrow) {
  const std::vector<std::uint8_t> original =
      encode_plan_entry(sample_entry(), "fuzz-key");
  Rng rng(0x5EED5ull);
  for (int i = 0; i < 50; ++i) {
    std::vector<std::uint8_t> bytes = original;
    const auto extra = static_cast<std::size_t>(1 + rng.below(16));
    for (std::size_t e = 0; e < extra; ++e)
      bytes.push_back(static_cast<std::uint8_t>(rng.next_u32()));
    EXPECT_THROW(decode_plan_entry(bytes.data(), bytes.size(), "<fuzz-app>"),
                 std::runtime_error);
  }
  // Same property through the save/load file path (what the cache does).
  TempDir tmp;
  const std::string path = tmp.file("fuzz.cmsplan");
  for (int i = 0; i < 30; ++i) {
    save_plan_entry(sample_entry(), "k", path);  // restore pristine
    const auto size = fs::file_size(path);
    if (rng.chance(0.5)) {
      fs::resize_file(path, rng.below(size));  // strictly shorter
    } else {
      std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
      const auto pos = static_cast<std::streamoff>(rng.below(size));
      f.seekg(pos);
      const int orig = f.get();
      f.seekp(pos);
      f.put(static_cast<char>(orig ^ static_cast<int>(1 + rng.below(255))));
    }
    EXPECT_THROW(load_plan_entry(path), std::runtime_error) << "round " << i;
  }
}

TEST(PlanFormat, FutureSchemaVersionThrowsWithPath) {
  TempDir tmp;
  const std::string path = tmp.file("future.cmsplan");
  save_plan_entry(sample_entry(), "k", path);
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(8);  // version field sits right after the 8-byte magic
  f.put(99);
  f.close();
  try {
    load_plan_entry(path);
    FAIL() << "expected a version error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos) << e.what();
  }
}

// ---- Memory tier ----

TEST(PlanCacheMemory, MissThenHitServesTheSameEntry) {
  PlanCache cache(PlanCache::Config{});
  EXPECT_EQ(cache.get("k1"), nullptr);
  cache.put("k1", sample_entry());
  const auto hit = cache.get("k1");
  ASSERT_NE(hit, nullptr);
  expect_identical(*hit, sample_entry());
  const PlanCache::Stats st = cache.stats();
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.mem_hits, 1u);
  EXPECT_EQ(st.inserts, 1u);
  EXPECT_EQ(st.entries, 1u);
  EXPECT_GT(st.bytes, 0u);
}

TEST(PlanCacheMemory, LruEvictionUnderEntryBudget) {
  PlanCache::Config cfg;
  cfg.memory.max_entries = 2;
  PlanCache cache(cfg);
  cache.put("a", sample_entry(0));
  cache.put("b", sample_entry(1));
  EXPECT_NE(cache.get("a"), nullptr);  // freshen a
  cache.put("c", sample_entry(2));     // evicts b (LRU), not a
  EXPECT_NE(cache.get("a"), nullptr);
  EXPECT_EQ(cache.get("b"), nullptr);
  EXPECT_NE(cache.get("c"), nullptr);
  const PlanCache::Stats st = cache.stats();
  EXPECT_EQ(st.entries, 2u);
  EXPECT_EQ(st.evictions, 1u);
  EXPECT_GT(st.evicted_bytes, 0u);
}

TEST(PlanCacheMemory, ByteBudgetEvictsUntilItFits) {
  const std::uint64_t one =
      encode_plan_entry(sample_entry(), "a").size();
  PlanCache::Config cfg;
  cfg.memory.max_bytes = one * 2;  // room for two entries, not three
  PlanCache cache(cfg);
  cache.put("a", sample_entry(0));
  cache.put("b", sample_entry(1));
  cache.put("c", sample_entry(2));
  const PlanCache::Stats st = cache.stats();
  EXPECT_LE(st.bytes, cfg.memory.max_bytes);
  EXPECT_LT(st.entries, 3u);
  EXPECT_EQ(cache.get("a"), nullptr);  // the LRU victim
}

TEST(PlanCacheMemory, EvictionNeverInvalidatesAHeldEntry) {
  // Pin-during-read: a reader's shared_ptr keeps the entry alive across
  // any number of evictions — the cache only drops ITS reference.
  PlanCache::Config cfg;
  cfg.memory.max_entries = 1;
  PlanCache cache(cfg);
  cache.put("a", sample_entry(5));
  const std::shared_ptr<const PlanCacheEntry> held = cache.get("a");
  ASSERT_NE(held, nullptr);
  cache.put("b", sample_entry(6));  // evicts a from the map
  EXPECT_EQ(cache.get("a"), nullptr);
  expect_identical(*held, sample_entry(5));  // still fully usable
}

// ---- Disk tier ----

PlanCache::Config disk_config(const TempDir& tmp, bool read_only = false) {
  PlanCache::Config cfg;
  cfg.dir = tmp.file("store");
  cfg.read_only = read_only;
  return cfg;
}

TEST(PlanCacheDisk, FreshInstanceWarmHitsAcrossProcesses) {
  TempDir tmp;
  {
    PlanCache writer(disk_config(tmp));
    writer.put("k1", sample_entry(9));
    EXPECT_EQ(writer.stats().disk_writes, 1u);
  }
  // A fresh instance over the same directory models a new process: the
  // entry must come off disk and then promote into memory.
  PlanCache reader(disk_config(tmp));
  const auto hit = reader.get("k1");
  ASSERT_NE(hit, nullptr);
  expect_identical(*hit, sample_entry(9));
  EXPECT_EQ(reader.stats().disk_hits, 1u);
  EXPECT_EQ(reader.stats().mem_hits, 0u);
  // Promoted: the second lookup is a pure memory hit.
  EXPECT_NE(reader.get("k1"), nullptr);
  EXPECT_EQ(reader.stats().mem_hits, 1u);
}

TEST(PlanCacheDisk, VanishedFileIsAMissNotAnError) {
  TempDir tmp;
  PlanCache writer(disk_config(tmp));
  writer.put("k1", sample_entry());
  PlanCache reader(disk_config(tmp));  // indexes the entry, memory cold
  fs::remove(reader.path_of("k1"));    // another process pruned it
  EXPECT_EQ(reader.get("k1"), nullptr);
  EXPECT_EQ(reader.stats().misses, 1u);
  EXPECT_EQ(reader.stats().disk_entries, 0u);  // index resynced
}

TEST(PlanCacheDisk, RenamedEntryIsRejectedNotServed) {
  TempDir tmp;
  PlanCache writer(disk_config(tmp));
  writer.put("k1", sample_entry());
  fs::rename(writer.path_of("k1"), writer.path_of("k2"));
  PlanCache reader(disk_config(tmp));
  EXPECT_THROW(reader.get("k2"), std::runtime_error);
}

TEST(PlanCacheDisk, CorruptEntryThrowsInsteadOfServing) {
  TempDir tmp;
  PlanCache writer(disk_config(tmp));
  writer.put("k1", sample_entry());
  const std::string path = writer.path_of("k1");
  const auto size = fs::file_size(path);
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekg(static_cast<std::streamoff>(size / 2));
  const int orig = f.get();
  f.seekp(static_cast<std::streamoff>(size / 2));
  f.put(static_cast<char>(orig ^ 0x20));
  f.close();
  PlanCache reader(disk_config(tmp));
  EXPECT_THROW(reader.get("k1"), std::runtime_error);
}

TEST(PlanCacheDisk, ReadOnlyNeverWrites) {
  TempDir tmp;
  {
    PlanCache writer(disk_config(tmp));
    writer.put("k1", sample_entry());
  }
  PlanCache ro(disk_config(tmp, /*read_only=*/true));
  ro.put("k2", sample_entry());  // memory tier only
  EXPECT_EQ(ro.stats().disk_writes, 0u);
  EXPECT_FALSE(fs::exists(ro.path_of("k2")));
  EXPECT_NE(ro.get("k1"), nullptr);  // disk reads still work
  EXPECT_NE(ro.get("k2"), nullptr);  // the memory tier still memoizes
}

TEST(PlanCacheDisk, DiskBudgetEvictsLruFiles) {
  TempDir tmp;
  PlanCache::Config cfg = disk_config(tmp);
  cfg.disk.max_entries = 2;
  PlanCache cache(cfg);
  cache.put("a", sample_entry(0));
  cache.put("b", sample_entry(1));
  cache.put("c", sample_entry(2));  // evicts a.cmsplan (oldest)
  EXPECT_FALSE(fs::exists(cache.path_of("a")));
  EXPECT_TRUE(fs::exists(cache.path_of("b")));
  EXPECT_TRUE(fs::exists(cache.path_of("c")));
  EXPECT_EQ(cache.stats().disk_entries, 2u);
  // The memory tier is unlimited here: "a" still serves from tier 1.
  EXPECT_NE(cache.get("a"), nullptr);
}

TEST(PlanCacheDisk, ReopenedCacheIndexesExistingEntries) {
  TempDir tmp;
  {
    PlanCache w(disk_config(tmp));
    w.put("a", sample_entry(0));
    w.put("b", sample_entry(1));
    w.put("c", sample_entry(2));
  }
  PlanCache::Config cfg = disk_config(tmp);
  cfg.disk.max_entries = 2;
  PlanCache cache(cfg);
  EXPECT_EQ(cache.stats().disk_entries, 3u);  // indexed, over budget
  const TraceStore::GcResult gr = cache.gc();
  EXPECT_EQ(gr.evicted_entries, 1u);
  EXPECT_EQ(cache.stats().disk_entries, 2u);
}

TEST(PlanCacheDisk, CoexistsWithATraceStoreInOneDirectory) {
  // .cmsplan and .cmstrace entries share the store directory without
  // seeing each other: neither index counts the other's artifact type.
  TempDir tmp;
  const TraceStore store(tmp.file("store"));
  CaptureRun capture;
  capture.trace.line_bytes = 64;
  store.save("trace-1", capture);

  PlanCache cache(disk_config(tmp));
  cache.put("plan-1", sample_entry());
  EXPECT_EQ(cache.stats().disk_entries, 1u);

  const TraceStore reopened(tmp.file("store"));
  EXPECT_EQ(reopened.stats().entries, 1u);  // only the .cmstrace
  PlanCache cache2(disk_config(tmp));
  EXPECT_EQ(cache2.stats().disk_entries, 1u);  // only the .cmsplan
  EXPECT_NE(cache2.get("plan-1"), nullptr);
  EXPECT_TRUE(reopened.load("trace-1").has_value());
}

// ---- Backend-parameterized tier 2: the disk-tier semantics hold over
// ---- any StoreBackend, not just the historical directory layout ----

enum class BackendKind { kDir, kMem };

const char* to_string(BackendKind k) {
  return k == BackendKind::kDir ? "dir" : "mem";
}

class PlanCacheAnyBackend : public ::testing::TestWithParam<BackendKind> {
 protected:
  /// A handle onto the SAME underlying storage each call — a fresh
  /// DirBackend over one directory, or one shared MemBackend instance —
  /// so a new PlanCache over config() models a process restart.
  std::shared_ptr<StoreBackend> backend() {
    if (GetParam() == BackendKind::kDir)
      return std::make_shared<DirBackend>(tmp_.file("store"));
    if (mem_ == nullptr) mem_ = std::make_shared<MemBackend>();
    return mem_;
  }
  PlanCache::Config config(bool read_only = false) {
    PlanCache::Config cfg;
    cfg.backend = backend();
    cfg.read_only = read_only;
    return cfg;
  }
  bool entry_exists(const std::string& key) {
    return backend()->contains(BlobKind::kPlan, key);
  }

  TempDir tmp_;
  std::shared_ptr<MemBackend> mem_;
};

TEST_P(PlanCacheAnyBackend, FreshInstanceWarmHitsAcrossRestarts) {
  {
    PlanCache writer(config());
    writer.put("k1", sample_entry(9));
    EXPECT_EQ(writer.stats().disk_writes, 1u);
  }
  PlanCache reader(config());
  const auto hit = reader.get("k1");
  ASSERT_NE(hit, nullptr);
  expect_identical(*hit, sample_entry(9));
  EXPECT_EQ(reader.stats().disk_hits, 1u);
  EXPECT_EQ(reader.stats().mem_hits, 0u);
  // Promoted: the second lookup is a pure memory hit.
  EXPECT_NE(reader.get("k1"), nullptr);
  EXPECT_EQ(reader.stats().mem_hits, 1u);
}

TEST_P(PlanCacheAnyBackend, VanishedEntryIsAMissNotAnError) {
  PlanCache writer(config());
  writer.put("k1", sample_entry());
  PlanCache reader(config());  // indexes the entry, memory cold
  backend()->remove(BlobKind::kPlan, "k1");  // another process pruned it
  EXPECT_EQ(reader.get("k1"), nullptr);
  EXPECT_EQ(reader.stats().misses, 1u);
  EXPECT_EQ(reader.stats().disk_entries, 0u);  // index resynced
}

TEST_P(PlanCacheAnyBackend, CorruptEntryThrowsInsteadOfServing) {
  backend()->put(BlobKind::kPlan, "k1",
                 StoreBackend::Blob{'n', 'o', 't', 'a', 'p', 'l', 'a', 'n'});
  PlanCache reader(config());
  EXPECT_THROW(reader.get("k1"), std::runtime_error);
}

TEST_P(PlanCacheAnyBackend, ReadOnlyNeverWrites) {
  {
    PlanCache writer(config());
    writer.put("k1", sample_entry());
  }
  PlanCache ro(config(/*read_only=*/true));
  ro.put("k2", sample_entry());  // memory tier only
  EXPECT_EQ(ro.stats().disk_writes, 0u);
  EXPECT_FALSE(entry_exists("k2"));
  EXPECT_NE(ro.get("k1"), nullptr);  // tier-2 reads still work
  EXPECT_NE(ro.get("k2"), nullptr);  // the memory tier still memoizes
}

TEST_P(PlanCacheAnyBackend, DiskBudgetEvictsLruEntries) {
  PlanCache::Config cfg = config();
  cfg.disk.max_entries = 2;
  PlanCache cache(cfg);
  cache.put("a", sample_entry(0));
  cache.put("b", sample_entry(1));
  cache.put("c", sample_entry(2));  // evicts a (oldest)
  EXPECT_FALSE(entry_exists("a"));
  EXPECT_TRUE(entry_exists("b"));
  EXPECT_TRUE(entry_exists("c"));
  EXPECT_EQ(cache.stats().disk_entries, 2u);
  // The memory tier is unlimited here: "a" still serves from tier 1.
  EXPECT_NE(cache.get("a"), nullptr);
}

TEST_P(PlanCacheAnyBackend, ReopenedCacheIndexesExistingEntries) {
  {
    PlanCache w(config());
    w.put("a", sample_entry(0));
    w.put("b", sample_entry(1));
    w.put("c", sample_entry(2));
  }
  PlanCache::Config cfg = config();
  cfg.disk.max_entries = 2;
  PlanCache cache(cfg);
  EXPECT_EQ(cache.stats().disk_entries, 3u);  // indexed, over budget
  const TraceStore::GcResult gr = cache.gc();
  EXPECT_EQ(gr.evicted_entries, 1u);
  EXPECT_EQ(cache.stats().disk_entries, 2u);
}

TEST_P(PlanCacheAnyBackend, EvictionCountersSplitPerTier) {
  PlanCache::Config cfg = config();
  cfg.memory.max_entries = 1;
  cfg.disk.max_entries = 2;
  PlanCache cache(cfg);
  cache.put("a", sample_entry(0));
  cache.put("b", sample_entry(1));
  cache.put("c", sample_entry(2));
  const PlanCache::Stats st = cache.stats();
  EXPECT_EQ(st.mem_evictions, 2u);   // the memory tier holds 1 of 3
  EXPECT_EQ(st.disk_evictions, 1u);  // tier 2 holds 2 of 3
  EXPECT_EQ(st.evictions, st.mem_evictions + st.disk_evictions);
  EXPECT_GT(st.mem_evicted_bytes, 0u);
  EXPECT_GT(st.disk_evicted_bytes, 0u);
}

INSTANTIATE_TEST_SUITE_P(Backends, PlanCacheAnyBackend,
                         ::testing::Values(BackendKind::kDir,
                                           BackendKind::kMem),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

// ---- Tiered tier 2: plans ride the same L1/L2 composition ----

TEST(PlanCacheTiered, FreshL1AnswersFromSharedL2ByReadThrough) {
  const auto shared_l2 = std::make_shared<MemBackend>();
  {
    PlanCache::Config cfg;
    cfg.backend = std::make_shared<TieredBackend>(
        std::make_shared<MemBackend>(), shared_l2);
    PlanCache writer(cfg);
    writer.put("k", sample_entry(3));  // writes through to the far tier
  }
  const auto fresh_l1 = std::make_shared<MemBackend>();
  PlanCache::Config cfg;
  cfg.backend = std::make_shared<TieredBackend>(fresh_l1, shared_l2,
                                                /*l2_writable=*/false);
  PlanCache reader(cfg);
  EXPECT_EQ(reader.stats().disk_entries, 0u);  // empty near-tier index
  const auto hit = reader.get("k");
  ASSERT_NE(hit, nullptr);
  expect_identical(*hit, sample_entry(3));
  const PlanCache::Stats st = reader.stats();
  EXPECT_EQ(st.disk_hits, 1u);
  EXPECT_EQ(st.misses, 0u);
  ASSERT_TRUE(st.tiers.has_value());
  EXPECT_EQ(st.tiers->l2_hits, 1u);
  EXPECT_EQ(st.tiers->promotions, 1u);
  EXPECT_TRUE(fresh_l1->contains(BlobKind::kPlan, "k"));  // promoted
}

// ---- Concurrency stress (mirrors TraceStoreStress) ----

TEST(PlanCacheStress, ConcurrentGetsPutsGcStayConsistent) {
  // 8 threads hammer one disk-backed cache with overlapping keys under
  // tight budgets on both tiers: gets, puts and gc all interleave. The
  // invariants: no call throws, the atomic counters add up exactly
  // (hits + misses == gets, inserts == puts), and every served or
  // surviving entry is bit-identical to its canonical value (eviction
  // may lose entries, never corrupt them).
  TempDir tmp;
  constexpr int kThreads = 8;
  constexpr int kOps = 120;
  constexpr std::uint64_t kKeys = 6;
  PlanCache::Config cfg = disk_config(tmp);
  cfg.memory.max_entries = 3;
  cfg.disk.max_entries = 4;
  PlanCache cache(cfg);

  const auto key_of = [](std::uint64_t k) {
    return "stress-k" + std::to_string(k);
  };

  std::atomic<std::uint64_t> gets{0}, puts{0};
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    pool.emplace_back([&, t] {
      Rng rng(0xCACE5ull + static_cast<std::uint64_t>(t));
      for (int op = 0; op < kOps; ++op) {
        const std::uint64_t k = rng.below(kKeys);
        switch (rng.below(5)) {
          case 0:
          case 1:
            cache.put(key_of(k), sample_entry(k));
            puts.fetch_add(1, std::memory_order_relaxed);
            break;
          case 2:
          case 3: {
            const auto hit = cache.get(key_of(k));
            gets.fetch_add(1, std::memory_order_relaxed);
            if (hit != nullptr) {
              EXPECT_EQ(hit->plan.expected_task_misses,
                        157.0 + static_cast<double>(k))
                  << key_of(k) << " served someone else's plan";
            }
            break;
          }
          case 4:
            cache.gc();
            break;
        }
      }
    });
  for (auto& th : pool) th.join();

  const PlanCache::Stats st = cache.stats();
  EXPECT_EQ(st.hits + st.misses, gets.load());
  EXPECT_EQ(st.inserts, puts.load());
  cache.gc();
  EXPECT_LE(cache.stats().entries, 3u);
  EXPECT_LE(cache.stats().disk_entries, 4u);
  for (std::uint64_t k = 0; k < kKeys; ++k)
    if (const auto hit = cache.get(key_of(k)))
      expect_identical(*hit, sample_entry(k));
}

}  // namespace
}  // namespace cms::opt
