// Tests for the dynamic set-stealing controller and the throughput
// planner.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "opt/dynamic.hpp"
#include "opt/throughput_planner.hpp"
#include "sim/engine.hpp"

namespace cms::opt {
namespace {

PartitionPlan two_client_plan(std::uint32_t a_sets, std::uint32_t b_sets,
                              std::uint32_t total) {
  PartitionPlan plan;
  PlanEntry a;
  a.client = mem::ClientId::task(0);
  a.name = "a";
  a.is_task = true;
  a.sets = a_sets;
  PlanEntry b;
  b.client = mem::ClientId::task(1);
  b.name = "b";
  b.is_task = true;
  b.sets = b_sets;
  plan.entries = {a, b};
  plan.total_sets = total;
  std::uint32_t base = 0;
  for (auto& e : plan.entries) {
    e.partition = {base, e.sets};
    base += e.sets;
  }
  plan.used_sets = base;
  plan.spare = {base, total - base};
  plan.feasible = true;
  return plan;
}

TEST(DynamicPartitioner, MovesSetsTowardPressure) {
  mem::HierarchyConfig hcfg;
  hcfg.num_procs = 1;
  hcfg.l2 = mem::CacheConfig{.size_bytes = 32 * 4 * 64, .line_bytes = 64, .ways = 4};
  mem::MemoryHierarchy hier(hcfg);
  const PartitionPlan plan = two_client_plan(16, 16, 32);
  plan.apply(hier.l2());

  DynamicPartitioner dyn(plan, {.min_sets = 2, .move_step = 2});
  // Task 0 streams (high pressure), task 1 idles.
  for (int epoch = 0; epoch < 8; ++epoch) {
    for (int i = 0; i < 2000; ++i)
      hier.l2().access(0, 0x100000 + static_cast<Addr>(epoch * 2000 + i) * 64,
                       AccessType::kRead);
    dyn.epoch(0, hier);
  }
  EXPECT_GT(dyn.moves(), 0u);
  EXPECT_GT(dyn.sets_of("a"), 16u);
  EXPECT_LT(dyn.sets_of("b"), 16u);
  EXPECT_GE(dyn.sets_of("b"), 2u);  // floor respected
  EXPECT_EQ(dyn.sets_of("a") + dyn.sets_of("b"), 32u);
  EXPECT_TRUE(hier.l2().partition_table().disjoint());
}

TEST(DynamicPartitioner, RepartitionFlushesRelinquishedSets) {
  // Regression: a move used to rewrite the partition table without
  // flushing the sets the donor gave up — dirty lines there were dropped
  // silently (their writebacks never accounted) and stale lines polluted
  // the taker's range.
  mem::HierarchyConfig hcfg;
  hcfg.num_procs = 1;
  hcfg.l2 = mem::CacheConfig{.size_bytes = 32 * 4 * 64, .line_bytes = 64, .ways = 4};
  mem::MemoryHierarchy hier(hcfg);
  const PartitionPlan plan = two_client_plan(16, 16, 32);
  plan.apply(hier.l2());
  DynamicPartitioner dyn(plan, {.min_sets = 2, .move_step = 2});

  // Dirty the low sets of task 1's range [16, 32) — conventional index
  // 0/1 folds to partition-local sets 0/1, exactly the sets a 2-set move
  // to task 0 takes away.
  for (int i = 0; i < 8; ++i)
    hier.l2().access(1, 0x900000 + static_cast<Addr>(i) * 32 * 64,
                     AccessType::kWrite);
  const std::uint64_t wb_before = hier.l2().stats().writebacks;

  // Task 0 streams; task 1 idles -> sets move 1 -> 0.
  for (int epoch = 0; epoch < 4 && dyn.moves() == 0; ++epoch) {
    for (int i = 0; i < 2000; ++i)
      hier.l2().access(0, 0x100000 + static_cast<Addr>(epoch * 2000 + i) * 64,
                       AccessType::kRead);
    dyn.epoch(0, hier);
  }
  ASSERT_GT(dyn.moves(), 0u);
  EXPECT_GT(dyn.flushed_sets(), 0u);
  EXPECT_GT(dyn.flush_writebacks(), 0u);
  // The drained dirty lines are visible as writebacks in the cache stats
  // AND as off-chip traffic (they go to DRAM like any other L2 victim).
  EXPECT_GE(hier.l2().stats().writebacks,
            wb_before + dyn.flush_writebacks());
  EXPECT_GE(hier.traffic().dram_accesses, dyn.flush_writebacks());
  EXPECT_GE(hier.traffic().offchip_bytes,
            dyn.flush_writebacks() * hier.config().l2.line_bytes);
  // Task 1's lines all lived in the donated sets — none may survive the
  // handover as stale occupants of task 0's new range.
  EXPECT_EQ(hier.l2().raw_cache().occupancy_of(mem::ClientId::task(1)), 0u);
}

TEST(DynamicPartitioner, StatsResetBetweenEpochsDoesNotWrap) {
  // Regression: `misses - last_misses` underflowed when the cache stats
  // were reset between epochs, giving the idle client a near-2^64
  // pressure and stealing sets for it.
  mem::HierarchyConfig hcfg;
  hcfg.num_procs = 1;
  hcfg.l2 = mem::CacheConfig{.size_bytes = 32 * 4 * 64, .line_bytes = 64, .ways = 4};
  mem::MemoryHierarchy hier(hcfg);
  const PartitionPlan plan = two_client_plan(16, 16, 32);
  plan.apply(hier.l2());
  DynamicPartitioner dyn(plan, {.min_sets = 2, .move_step = 2});

  // Epoch 1: task 1 misses a lot (sets last_misses high for task 1).
  for (int i = 0; i < 2000; ++i)
    hier.l2().access(1, 0x900000 + static_cast<Addr>(i) * 64, AccessType::kRead);
  dyn.epoch(0, hier);

  hier.l2().reset_stats();

  // Epoch 2: only task 0 works. A wrapped delta would crown idle task 1
  // the taker; the guard must instead move sets toward task 0 (or hold).
  for (int i = 0; i < 2000; ++i)
    hier.l2().access(0, 0x100000 + static_cast<Addr>(i) * 64, AccessType::kRead);
  dyn.epoch(0, hier);
  EXPECT_LE(dyn.sets_of("b"), 16u);
  EXPECT_GE(dyn.sets_of("a"), 16u);
}

TEST(DynamicPartitioner, NoMovesWhenBalanced) {
  mem::HierarchyConfig hcfg;
  hcfg.l2 = mem::CacheConfig{.size_bytes = 32 * 4 * 64, .line_bytes = 64, .ways = 4};
  mem::MemoryHierarchy hier(hcfg);
  const PartitionPlan plan = two_client_plan(16, 16, 32);
  plan.apply(hier.l2());
  DynamicPartitioner dyn(plan);
  // Both clients stream identically: pressures equal within hysteresis.
  for (int epoch = 0; epoch < 4; ++epoch) {
    for (int i = 0; i < 1000; ++i) {
      const Addr off = static_cast<Addr>(epoch * 1000 + i) * 64;
      hier.l2().access(0, 0x100000 + off, AccessType::kRead);
      hier.l2().access(1, 0x900000 + off, AccessType::kRead);
    }
    dyn.epoch(0, hier);
  }
  EXPECT_EQ(dyn.moves(), 0u);
}

TEST(EngineEpochHook, FiresAtEpochBoundaries) {
  // Integration: the hook runs during a real app simulation.
  core::ExperimentConfig cfg;
  cfg.platform.hier.l2.size_bytes = 32 * 1024;
  apps::Application app = apps::make_jpeg_canny_app(apps::AppConfig::tiny(3));
  sim::PlatformConfig pc = cfg.platform;
  pc.rt_data = app.rt_data;
  pc.rt_bss = app.rt_bss;
  sim::Platform platform(pc);
  for (const auto& b : app.net->buffers())
    platform.hierarchy().l2().interval_table().add(b.base, b.footprint, b.id);
  sim::Os os(sim::SchedPolicy::kMigrating, pc.hier.num_procs);
  sim::TimingEngine engine(platform, os, app.net->tasks());
  int calls = 0;
  Cycle last = 0;
  engine.set_epoch_hook(10000, [&](Cycle now, mem::MemoryHierarchy&) {
    ++calls;
    EXPECT_GE(now, last);
    last = now;
  });
  const sim::SimResults res = engine.run();
  EXPECT_FALSE(res.deadlocked);
  EXPECT_GT(calls, 2);
  EXPECT_TRUE(app.verify());
}

TEST(ThroughputPlanner, NeverWorseThanMissOptimalSeed) {
  core::ExperimentConfig cfg;
  cfg.platform.hier.l2.size_bytes = 32 * 1024;
  cfg.profile_grid = {1, 2, 4, 8, 16};
  cfg.profile_runs = 1;
  core::Experiment exp(
      [] { return apps::make_m2v_app(apps::AppConfig::tiny(5)); }, cfg);
  const MissProfile prof = exp.profile();

  ThroughputPlannerConfig tcfg;
  tcfg.num_procs = 4;
  const ThroughputPlan tp = plan_for_throughput(prof, exp.tasks(),
                                                exp.buffers(),
                                                cfg.platform.hier.l2, tcfg);
  ASSERT_TRUE(tp.feasible);
  EXPECT_LE(tp.partition.used_sets, tp.partition.total_sets);

  // Baseline: miss-optimal plan evaluated with the same assignment
  // optimizer.
  const PartitionPlan seed = exp.plan(prof);
  std::vector<TaskLoad> loads;
  for (const auto& e : seed.entries)
    if (e.is_task)
      loads.push_back({e.client.id, e.name, prof.active_cycles(e.name, e.sets)});
  const Assignment base = assign_local_search(loads, 4);
  EXPECT_LE(tp.model_makespan, base.makespan + 1e-6);
  // The plan remains a valid partitioning (applies cleanly).
  mem::PartitionedCache l2(cfg.platform.hier.l2);
  tp.partition.apply(l2);
  EXPECT_TRUE(l2.partition_table().disjoint());
}

TEST(ThroughputPlanner, AssignmentCoversAllTasks) {
  core::ExperimentConfig cfg;
  cfg.platform.hier.l2.size_bytes = 32 * 1024;
  cfg.profile_grid = {1, 4};
  cfg.profile_runs = 1;
  core::Experiment exp(
      [] { return apps::make_jpeg_canny_app(apps::AppConfig::tiny(6)); }, cfg);
  const MissProfile prof = exp.profile();
  ThroughputPlannerConfig tcfg;
  const ThroughputPlan tp = plan_for_throughput(prof, exp.tasks(),
                                                exp.buffers(),
                                                cfg.platform.hier.l2, tcfg);
  ASSERT_TRUE(tp.feasible);
  EXPECT_EQ(tp.loads.size(), 15u);
  EXPECT_EQ(tp.assignment.task_to_proc.size(), 15u);
  for (const ProcId p : tp.assignment.task_to_proc) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 4);
  }
}

}  // namespace
}  // namespace cms::opt
