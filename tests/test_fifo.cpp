// Tests for the KPN FIFO channel and frame buffer.
#include <gtest/gtest.h>

#include "kpn/fifo.hpp"
#include "kpn/frame_buffer.hpp"

namespace cms::kpn {
namespace {

sim::Region fifo_region(std::uint64_t bytes) {
  return sim::Region{0x10000, bytes, "fifo"};
}

TEST(Fifo, FifoOrderPreserved) {
  sim::MemoryRecorder rec;
  Fifo<int> f(1, "f", fifo_region(4096), 8);
  for (int i = 0; i < 8; ++i) f.write(rec, i);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(f.read(rec), i);
}

TEST(Fifo, CapacityAndSpace) {
  sim::MemoryRecorder rec;
  Fifo<int> f(1, "f", fifo_region(4096), 4);
  EXPECT_TRUE(f.can_write(4));
  EXPECT_FALSE(f.can_write(5));
  for (int i = 0; i < 4; ++i) f.write(rec, i);
  EXPECT_FALSE(f.can_write());
  EXPECT_EQ(f.space(), 0u);
  f.read(rec);
  EXPECT_TRUE(f.can_write());
}

TEST(Fifo, WrapAroundKeepsData) {
  sim::MemoryRecorder rec;
  Fifo<int> f(1, "f", fifo_region(4096), 4);
  for (int round = 0; round < 10; ++round) {
    f.write(rec, round * 2);
    f.write(rec, round * 2 + 1);
    EXPECT_EQ(f.read(rec), round * 2);
    EXPECT_EQ(f.read(rec), round * 2 + 1);
  }
  EXPECT_EQ(f.total_written(), 20u);
  EXPECT_EQ(f.total_read(), 20u);
}

TEST(Fifo, BulkReadWrite) {
  sim::MemoryRecorder rec;
  Fifo<std::uint16_t> f(1, "f", fifo_region(4096), 16);
  const std::uint16_t data[5] = {1, 2, 3, 4, 5};
  f.write_n(rec, data, 5);
  std::uint16_t out[5] = {};
  f.read_n(rec, out, 5);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(out[i], data[i]);
}

TEST(Fifo, PeekDoesNotConsume) {
  sim::MemoryRecorder rec;
  Fifo<int> f(1, "f", fifo_region(4096), 4);
  f.write(rec, 42);
  f.write(rec, 43);
  EXPECT_EQ(f.peek(rec, 0), 42);
  EXPECT_EQ(f.peek(rec, 1), 43);
  EXPECT_EQ(f.size(), 2u);
  EXPECT_EQ(f.read(rec), 42);
}

TEST(Fifo, EosAfterCloseAndDrain) {
  sim::MemoryRecorder rec;
  Fifo<int> f(1, "f", fifo_region(4096), 4);
  f.write(rec, 1);
  f.close();
  EXPECT_TRUE(f.closed());
  EXPECT_FALSE(f.eos());  // still one token
  f.read(rec);
  EXPECT_TRUE(f.eos());
}

TEST(Fifo, RecordedTrafficStaysInRegion) {
  sim::MemoryRecorder rec;
  const sim::Region region = fifo_region(4096);
  Fifo<std::uint64_t> f(1, "f", region, 8);
  for (int i = 0; i < 20; ++i) {
    f.write(rec, static_cast<std::uint64_t>(i));
    (void)f.read(rec);
  }
  const auto trace = rec.take();
  EXPECT_GT(trace.events.size(), 40u);  // tokens + admin
  for (const auto& e : trace.events) {
    EXPECT_GE(e.addr, region.base);
    EXPECT_LT(e.addr, region.base + f.footprint_bytes());
  }
}

TEST(Fifo, FootprintCoversAdminAndData) {
  Fifo<std::uint32_t> f(1, "f", fifo_region(4096), 10);
  EXPECT_EQ(f.footprint_bytes(), FifoBase::kAdminBytes + 40u);
}

TEST(FrameBuffer, ReadWriteRoundtrip) {
  sim::MemoryRecorder rec;
  FrameBuffer fb(2, "fb", sim::Region{0x20000, 4096, "fb"}, 1024);
  fb.write(rec, 100, 0xAB);
  EXPECT_EQ(fb.read(rec, 100), 0xAB);
}

TEST(FrameBuffer, BlockTransferMatchesHostData) {
  sim::MemoryRecorder rec;
  FrameBuffer fb(2, "fb", sim::Region{0x20000, 4096, "fb"}, 1024);
  std::uint8_t src[32];
  for (int i = 0; i < 32; ++i) src[i] = static_cast<std::uint8_t>(i * 3);
  fb.write_block(rec, 64, src, 32);
  std::uint8_t dst[32] = {};
  fb.read_block(rec, 64, dst, 32);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(dst[i], src[i]);
}

TEST(FrameBuffer, BlockAccessChunking) {
  sim::MemoryRecorder rec;
  FrameBuffer fb(2, "fb", sim::Region{0x20000, 4096, "fb"}, 1024);
  std::uint8_t buf[64] = {};
  fb.write_block(rec, 0, buf, 64, 8);
  const auto trace = rec.take();
  std::size_t writes = 0;
  for (const auto& e : trace.events)
    if (e.type == cms::AccessType::kWrite) ++writes;
  EXPECT_EQ(writes, 8u);  // 64 bytes in 8-byte chunks
}

}  // namespace
}  // namespace cms::kpn
