// Robustness and failure-injection tests: malformed inputs, artificial
// deadlocks, unusual cache policies — the system must degrade loudly and
// predictably, never crash or silently corrupt.
#include <gtest/gtest.h>

#include "apps/applications.hpp"
#include "apps/jpeg/jpeg_codec.hpp"
#include "apps/codec/vlc.hpp"
#include "apps/m2v/m2v_codec.hpp"
#include "core/experiment.hpp"
#include "kpn/network.hpp"
#include "sim/engine.hpp"

namespace cms {
namespace {

TEST(Robustness, TruncatedJpegPayloadFailsDecodeCleanly) {
  const Image src = testimg::blocks(32, 32, 3);
  apps::JpegStream s = apps::jpeg_encode(src, 75);
  s.payload.resize(s.payload.size() / 4);  // truncate
  // Reference decode must return an image (possibly partial), not crash.
  const Image dec = apps::jpeg_reference_decode(s);
  EXPECT_EQ(dec.width(), 32);
  EXPECT_EQ(dec.height(), 32);
}

TEST(Robustness, GarbageJpegBlockDecodeReturnsFalse) {
  const std::uint8_t garbage[] = {0xFF, 0xFF, 0xFF, 0xFF};
  BitReader br(garbage, sizeof(garbage));
  int dc = 0;
  std::int16_t zz[64];
  // All-ones bits decode as some symbols until exhaustion; the decoder
  // must terminate and signal failure rather than loop or crash.
  for (int i = 0; i < 4; ++i) {
    if (!apps::jpeg_decode_block(br, dc, zz)) break;
  }
  SUCCEED();
}

TEST(Robustness, M2vRejectsForeignBytes) {
  std::vector<std::uint8_t> junk(256, 0xAB);
  apps::M2vStream s;
  s.bytes = junk;
  const auto frames = apps::m2v_reference_decode(s);
  EXPECT_TRUE(frames.empty());
}

TEST(Robustness, M2vBlockLevelsMalformedRunTerminates) {
  // A run that jumps past position 63 must not write out of bounds.
  BitWriter bw;
  apps::put_ue(bw, 60);
  apps::put_se(bw, 3);
  apps::put_ue(bw, 10);  // run beyond the block
  apps::put_se(bw, 1);
  const auto bytes = bw.take();
  BitReader br(bytes.data(), bytes.size());
  std::int16_t zz[64];
  apps::m2v_decode_block_levels(br, zz);
  EXPECT_EQ(zz[60], 3);
}

/// Two processes in a token cycle with insufficient FIFO capacity: a
/// genuine artificial deadlock the engine must detect and report.
class CycleProc final : public kpn::Process {
 public:
  CycleProc(TaskId id, std::string name, kpn::Fifo<int>* in,
            kpn::Fifo<int>* out, bool starts)
      : Process(id, std::move(name)), in_(in), out_(out), starts_(starts) {}

  bool can_fire() const override {
    if (fired_ >= 10) return false;
    if (starts_ && fired_ == 0) return out_->can_write();
    return in_->can_read() && out_->can_write();
  }
  bool done() const override { return fired_ >= 10; }
  void run(sim::TaskContext& ctx) override {
    if (!(starts_ && fired_ == 0)) (void)in_->read(ctx.mem());
    out_->write(ctx.mem(), fired_);
    ++fired_;
  }

 private:
  kpn::Fifo<int>* in_;
  kpn::Fifo<int>* out_;
  bool starts_;
  int fired_ = 0;
};

TEST(Robustness, TokenCycleDeadlockDetected) {
  // Two processes, each waiting for a token from the other before
  // producing: a classic token-cycle deadlock the engine must report.
  kpn::Network net;
  auto* xy = net.make_fifo<int>("xy", 1);
  auto* yx = net.make_fifo<int>("yx", 1);
  net.add_process<CycleProc>("x", kpn::ProcessSpec{}, yx, xy, false);
  net.add_process<CycleProc>("y", kpn::ProcessSpec{}, xy, yx, false);

  sim::PlatformConfig pc;
  pc.hier.num_procs = 2;
  sim::Platform platform(pc);
  sim::Os os(sim::SchedPolicy::kMigrating, 2);
  sim::TimingEngine engine(platform, os, net.tasks());
  const sim::SimResults res = engine.run();
  EXPECT_TRUE(res.deadlocked);  // nobody can take the first step
}

TEST(Robustness, TokenCycleWithStarterMakesProgress) {
  // The same cycle with both processes allowed a first unconditional
  // production runs to completion — the deadlock above is about token
  // availability, not a scheduler defect.
  kpn::Network net;
  // Capacity 2: each process can hold one in-flight token while the
  // peer's atomic read+write firing completes.
  auto* ab = net.make_fifo<int>("ab", 2);
  auto* ba = net.make_fifo<int>("ba", 2);
  net.add_process<CycleProc>("a", kpn::ProcessSpec{}, ba, ab, true);
  net.add_process<CycleProc>("b", kpn::ProcessSpec{}, ab, ba, true);

  sim::PlatformConfig pc;
  pc.hier.num_procs = 2;
  sim::Platform platform(pc);
  sim::Os os(sim::SchedPolicy::kMigrating, 2);
  sim::TimingEngine engine(platform, os, net.tasks());
  const sim::SimResults res = engine.run();
  EXPECT_FALSE(res.deadlocked);
}

TEST(Robustness, EngineWithNoTasksFinishesEmpty) {
  sim::PlatformConfig pc;
  sim::Platform platform(pc);
  sim::Os os(sim::SchedPolicy::kMigrating, pc.hier.num_procs);
  sim::TimingEngine engine(platform, os, {});
  const sim::SimResults res = engine.run();
  EXPECT_FALSE(res.deadlocked);
  EXPECT_EQ(res.dispatches, 0u);
  EXPECT_EQ(res.makespan, 0u);
}

TEST(Robustness, AppsVerifyUnderUnusualCachePolicies) {
  // Functional output must be independent of timing policy choices.
  for (const mem::Replacement repl :
       {mem::Replacement::kFifo, mem::Replacement::kRandom}) {
    core::ExperimentConfig cfg;
    cfg.platform.hier.l2.size_bytes = 32 * 1024;
    cfg.platform.hier.l2.replacement = repl;
    cfg.platform.hier.l1.replacement = repl;
    core::Experiment exp(
        [] { return apps::make_m2v_app(apps::AppConfig::tiny(9)); }, cfg);
    const core::RunOutput out = exp.run_shared();
    EXPECT_TRUE(out.verified);
    EXPECT_FALSE(out.results.deadlocked);
  }
}

TEST(Robustness, WriteThroughL2StillVerifies) {
  core::ExperimentConfig cfg;
  cfg.platform.hier.l2.size_bytes = 32 * 1024;
  cfg.platform.hier.l2.write_policy = mem::WritePolicy::kWriteThroughNoAllocate;
  core::Experiment exp(
      [] { return apps::make_jpeg_canny_app(apps::AppConfig::tiny(10)); }, cfg);
  const core::RunOutput out = exp.run_shared();
  EXPECT_TRUE(out.verified);
}

TEST(Robustness, SingleProcessorRunsEverything) {
  core::ExperimentConfig cfg;
  cfg.platform.hier.num_procs = 1;
  core::Experiment exp(
      [] { return apps::make_m2v_app(apps::AppConfig::tiny(11)); }, cfg);
  const core::RunOutput out = exp.run_shared();
  EXPECT_TRUE(out.verified);
  EXPECT_FALSE(out.results.deadlocked);
  ASSERT_EQ(out.results.procs.size(), 1u);
  EXPECT_EQ(out.results.procs[0].idle_cycles, 0u);
}

TEST(Robustness, TinyL2StillCorrectJustSlow) {
  core::ExperimentConfig cfg;
  cfg.platform.hier.l2.size_bytes = 4 * 1024;  // 16 sets
  core::Experiment exp(
      [] { return apps::make_jpeg_canny_app(apps::AppConfig::tiny(12)); }, cfg);
  const core::RunOutput out = exp.run_shared();
  EXPECT_TRUE(out.verified);
  EXPECT_GT(out.results.l2_miss_rate(), 0.2);  // it thrashes...
}

}  // namespace
}  // namespace cms
