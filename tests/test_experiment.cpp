// Integration tests: the full Experiment pipeline on tiny app instances —
// functional verification, compositionality, and the headline shared-vs-
// partitioned comparison in the conflict-heavy regime.
#include <gtest/gtest.h>

#include "core/experiment.hpp"

namespace cms::core {
namespace {

ExperimentConfig tiny_experiment(std::uint32_t l2_kb = 32) {
  ExperimentConfig cfg;
  cfg.platform.hier.l2.size_bytes = l2_kb * 1024;
  cfg.profile_grid = {1, 2, 4, 8, 16};
  cfg.profile_runs = 1;
  return cfg;
}

AppFactory tiny_jpeg_canny(std::uint64_t seed = 7) {
  return [seed] { return apps::make_jpeg_canny_app(apps::AppConfig::tiny(seed)); };
}

AppFactory tiny_m2v(std::uint64_t seed = 7) {
  return [seed] { return apps::make_m2v_app(apps::AppConfig::tiny(seed)); };
}

TEST(Experiment, TaskAndBufferInventories) {
  Experiment exp(tiny_jpeg_canny(), tiny_experiment());
  const auto tasks = exp.tasks();
  EXPECT_EQ(tasks.size(), 15u);  // 2 x 4 JPEG tasks + 7 Canny tasks
  const auto buffers = exp.buffers();
  EXPECT_GT(buffers.size(), 10u);  // fifos + frames + 4 segments
  int segments = 0;
  for (const auto& b : buffers)
    segments += b.kind == kpn::BufferKind::kSegment;
  EXPECT_EQ(segments, 4);  // appl data/bss, rt data/bss
}

TEST(Experiment, M2vHasThirteenTasks) {
  Experiment exp(tiny_m2v(), tiny_experiment());
  EXPECT_EQ(exp.tasks().size(), 13u);
}

TEST(Experiment, SharedRunVerifiesFunctionally) {
  Experiment exp(tiny_jpeg_canny(), tiny_experiment());
  const RunOutput out = exp.run_shared();
  EXPECT_TRUE(out.verified);
  EXPECT_FALSE(out.results.deadlocked);
  EXPECT_FALSE(out.partitioned);
  EXPECT_GT(out.results.l2_accesses, 0u);
}

TEST(Experiment, PartitionedRunVerifiesFunctionally) {
  Experiment exp(tiny_m2v(), tiny_experiment());
  const auto prof = exp.profile();
  const auto plan = exp.plan(prof);
  ASSERT_TRUE(plan.feasible);
  const RunOutput out = exp.run_partitioned(plan);
  EXPECT_TRUE(out.verified);
  EXPECT_TRUE(out.partitioned);
  EXPECT_FALSE(out.results.deadlocked);
}

TEST(Experiment, RunsAreDeterministic) {
  Experiment exp(tiny_jpeg_canny(), tiny_experiment());
  const RunOutput a = exp.run_shared();
  const RunOutput b = exp.run_shared();
  EXPECT_EQ(a.results.l2_misses, b.results.l2_misses);
  EXPECT_EQ(a.results.makespan, b.results.makespan);
}

TEST(Experiment, ProfileCoversGridForEveryTask) {
  ExperimentConfig cfg = tiny_experiment();
  cfg.profile_grid = {1, 4};
  Experiment exp(tiny_m2v(), cfg);
  const auto prof = exp.profile();
  for (const auto& [id, name] : exp.tasks()) {
    EXPECT_TRUE(prof.has(name)) << name;
    EXPECT_EQ(prof.sizes(name).size(), 2u) << name;
  }
}

TEST(Experiment, MissCurvesAreRoughlyMonotone) {
  Experiment exp(tiny_jpeg_canny(), tiny_experiment());
  const auto prof = exp.profile();
  for (const auto& [id, name] : exp.tasks()) {
    const double at_min = prof.misses(name, 1);
    const double at_max = prof.misses(name, 16);
    EXPECT_LE(at_max, at_min * 1.05 + 50.0) << name;  // small tolerance
  }
}

TEST(Experiment, CompositionalityWithinPaperBound) {
  // The paper's Figure 3: expected-vs-simulated per-task difference
  // relative to total misses stays small (theirs: <= 2%).
  Experiment exp(tiny_m2v(), tiny_experiment());
  const auto prof = exp.profile();
  const auto plan = exp.plan(prof);
  ASSERT_TRUE(plan.feasible);
  const RunOutput out = exp.run_partitioned(plan);
  const auto rep =
      opt::compare_expected_vs_simulated(prof, plan, out.results);
  EXPECT_FALSE(rep.rows.empty());
  EXPECT_TRUE(rep.within(0.05)) << "max rel diff " << rep.max_rel_to_total;
}

TEST(Experiment, PerTaskMissesIndependentOfCoRunners) {
  // Strong compositionality: a task's misses under the full partitioned
  // app equal its misses when profiled in isolation at the same size.
  Experiment exp(tiny_jpeg_canny(), tiny_experiment());
  const auto prof = exp.profile();
  const auto plan = exp.plan(prof);
  const RunOutput out = exp.run_partitioned(plan);
  double total = 0;
  for (const auto& t : out.results.tasks) total += static_cast<double>(t.l2.misses);
  for (const auto& entry : plan.entries) {
    if (!entry.is_task) continue;
    const auto* t = out.results.find_task(entry.name);
    ASSERT_NE(t, nullptr);
    const double expected = prof.misses(entry.name, entry.sets);
    EXPECT_NEAR(static_cast<double>(t->l2.misses), expected,
                0.05 * total + 20.0)
        << entry.name;
  }
}

TEST(Experiment, PartitioningReducesMissesUnderPressure) {
  // In the conflict-heavy regime (small L2 relative to footprint) the
  // paper's headline result must hold: partitioned < shared misses.
  ExperimentConfig cfg = tiny_experiment(16);  // deliberately small L2
  Experiment exp(tiny_jpeg_canny(), cfg);
  const auto prof = exp.profile();
  const auto plan = exp.plan(prof);
  ASSERT_TRUE(plan.feasible);
  const RunOutput shared = exp.run_shared();
  const RunOutput part = exp.run_partitioned(plan);
  EXPECT_TRUE(shared.verified);
  EXPECT_TRUE(part.verified);
  EXPECT_LT(part.results.l2_misses, shared.results.l2_misses);
}

TEST(Experiment, LargerSharedL2Helps) {
  Experiment small(tiny_m2v(), tiny_experiment(16));
  Experiment large(tiny_m2v(), tiny_experiment(16));
  const RunOutput s16 = small.run_shared();
  const RunOutput s128 = large.run_shared_with_l2(128 * 1024);
  EXPECT_LT(s128.results.l2_misses, s16.results.l2_misses);
}

TEST(Experiment, StaticPolicyAlsoRunsToCompletion) {
  ExperimentConfig cfg = tiny_experiment();
  cfg.policy = sim::SchedPolicy::kStatic;
  Experiment exp(tiny_m2v(), cfg);
  // Static assignment requires assigning tasks; round-robin by id happens
  // in the harness... verify it completes without deadlock.
  const RunOutput out = exp.run_shared();
  EXPECT_FALSE(out.results.deadlocked);
  EXPECT_TRUE(out.verified);
}

}  // namespace
}  // namespace cms::core
