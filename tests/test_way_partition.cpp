// Tests for the column-caching (way-partitioning) comparison mechanism.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "mem/partitioned_cache.hpp"

namespace cms::mem {
namespace {

CacheConfig cfg4way() {
  return CacheConfig{.size_bytes = 16 * 4 * 64, .line_bytes = 64, .ways = 4};
}

TEST(WayPartition, VictimStaysInAssignedWays) {
  SetAssocCache cache(cfg4way());
  // Fill set 0 via unrestricted accesses.
  for (int i = 0; i < 4; ++i)
    cache.access_at(0, static_cast<Addr>(i) * 0x10000, AccessType::kRead,
                    ClientId::task(0));
  // Client restricted to way 2..3 keeps evicting only there: lines in
  // ways 0..1 survive arbitrarily many restricted misses.
  for (int i = 0; i < 50; ++i)
    cache.access_at(0, 0x100000 + static_cast<Addr>(i) * 0x1000,
                    AccessType::kRead, ClientId::task(1), WayRange{2, 2});
  EXPECT_TRUE(cache.contains(0, 0x00000));
  EXPECT_TRUE(cache.contains(0, 0x10000));
}

TEST(WayPartition, HitsFoundInAnyWay) {
  // Column caching: lookups are not restricted, only replacement.
  SetAssocCache cache(cfg4way());
  cache.access_at(0, 0x0, AccessType::kRead, ClientId::task(0), WayRange{0, 1});
  const auto r = cache.access_at(0, 0x0, AccessType::kRead, ClientId::task(1),
                                 WayRange{3, 1});
  EXPECT_TRUE(r.hit);
}

TEST(WayPartition, ModeSelectsMechanism) {
  PartitionedCache l2(cfg4way());
  EXPECT_EQ(l2.mode(), PartitionMode::kShared);
  l2.set_partitioning_enabled(true);
  EXPECT_EQ(l2.mode(), PartitionMode::kSetPartitioned);
  l2.set_mode(PartitionMode::kWayPartitioned);
  EXPECT_FALSE(l2.partitioning_enabled());
  EXPECT_TRUE(l2.way_assignment(ClientId::task(0)).unrestricted());
  l2.assign_ways(ClientId::task(0), {1, 2});
  EXPECT_EQ(l2.way_assignment(ClientId::task(0)).first_way, 1u);
  EXPECT_EQ(l2.way_assignment(ClientId::task(0)).num_ways, 2u);
}

TEST(WayPartition, WayModeUsesConventionalIndex) {
  PartitionedCache l2(cfg4way());
  l2.set_mode(PartitionMode::kWayPartitioned);
  l2.assign_ways(ClientId::task(1), {0, 1});
  const auto r = l2.access(1, 0x40 * 17, AccessType::kRead);
  EXPECT_EQ(r.set_index, 17u % 16u);
}

TEST(WayPartition, IsolatesClientsWithDisjointWays) {
  // Two streaming clients with disjoint single ways never evict each
  // other, mirroring the set-partitioned isolation property.
  PartitionedCache l2(cfg4way());
  l2.set_mode(PartitionMode::kWayPartitioned);
  l2.assign_ways(ClientId::task(0), {0, 1});
  l2.assign_ways(ClientId::task(1), {1, 1});
  Rng rng(5);
  for (int i = 0; i < 5000; ++i) {
    const auto task = static_cast<TaskId>(rng.below(2));
    const Addr addr =
        static_cast<Addr>(task) * 0x1000000 + (rng.below(256) * 64);
    l2.access(task, addr, AccessType::kRead);
  }
  EXPECT_EQ(l2.client_stats(ClientId::task(0)).evictions_by_other, 0u);
  EXPECT_EQ(l2.client_stats(ClientId::task(1)).evictions_by_other, 0u);
}

TEST(WayPartition, GranularityLimitForcesSharing) {
  // More clients than ways: at least two clients share a way group and
  // interfere — the paper's criticism of column caching, as a test.
  PartitionedCache l2(cfg4way());
  l2.set_mode(PartitionMode::kWayPartitioned);
  for (int t = 0; t < 8; ++t)
    l2.assign_ways(ClientId::task(t), {static_cast<std::uint32_t>(t) % 4, 1});
  Rng rng(6);
  for (int i = 0; i < 20000; ++i) {
    const auto task = static_cast<TaskId>(rng.below(8));
    const Addr addr =
        static_cast<Addr>(task) * 0x1000000 + (rng.below(512) * 64);
    l2.access(task, addr, AccessType::kRead);
  }
  std::uint64_t inter = 0;
  for (int t = 0; t < 8; ++t)
    inter += l2.client_stats(ClientId::task(t)).evictions_by_other;
  EXPECT_GT(inter, 0u);
}

}  // namespace
}  // namespace cms::mem
